"""Session repository: the server's in-memory + on-disk request store.

Every submitted request becomes a :class:`SessionRecord` with a lifecycle of
``queued → running → done | failed``.  Progress events accumulate on the
record and fan out to streaming subscribers; terminal records are persisted
as JSON under the server's state directory using the same atomic-write
pattern as :class:`~repro.core.checkpoint.CampaignCheckpoint` (temp file +
:func:`os.replace`), so a crash mid-write never leaves a truncated result on
disk.  On startup the repository re-loads every persisted session, so
``/result/<id>`` keeps answering across server restarts.

The repository is written for exactly one writer topology: worker threads
mutate records (under one lock) while the asyncio server thread reads and
subscribes.  Streaming subscribers are ``asyncio.Queue`` objects bound to the
server's loop; mutations from worker threads are marshalled onto the loop
with :meth:`asyncio.loop.call_soon_threadsafe`, so queue operations only ever
happen on the loop thread.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Optional

#: Sentinel closing a subscriber's event stream.
STREAM_END = None

_TERMINAL_STATES = ("done", "failed")


@dataclass
class SessionRecord:
    """One served negotiation request and everything known about it."""

    session_id: str
    request: dict[str, Any]
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    events: list[dict[str, Any]] = field(default_factory=list)
    payload: Optional[dict[str, Any]] = None
    error: Optional[str] = None
    #: Live subscriber queues (loop thread only; not persisted).
    subscribers: list = field(default_factory=list)

    def status_view(self) -> dict[str, Any]:
        """The ``/status`` body: lifecycle + progress, without the payload."""
        last_round = 0
        for event in reversed(self.events):
            if event.get("event") == "round":
                last_round = event.get("round", 0)
                break
        view = {
            "session_id": self.session_id,
            "state": self.state,
            "request": self.request,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "rounds_completed": last_round,
            "events": len(self.events),
        }
        if self.error is not None:
            view["error"] = self.error
        return view

    def result_view(self) -> dict[str, Any]:
        """The ``/result`` body (payload included once terminal)."""
        view = self.status_view()
        view["result"] = self.payload
        return view

    def persistable(self) -> dict[str, Any]:
        """The JSON document written to the state directory."""
        return {
            "session_id": self.session_id,
            "request": self.request,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "events": self.events,
            "result": self.payload,
            "error": self.error,
        }


class SessionRepository:
    """Thread-safe store of :class:`SessionRecord` objects.

    ``loop`` is the asyncio loop streaming subscribers live on; it may be
    ``None`` for synchronous use (tests, the benchmark), in which case
    subscriptions are unavailable but the record store works unchanged.
    """

    def __init__(
        self,
        state_dir: Optional[str | os.PathLike] = None,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._records: dict[str, SessionRecord] = {}
        self._state_dir = os.fspath(state_dir) if state_dir is not None else None
        self.loop = loop
        if self._state_dir is not None:
            os.makedirs(self._state_dir, exist_ok=True)
            self._load_persisted()

    # -- persistence -------------------------------------------------------------

    def _session_path(self, session_id: str) -> str:
        assert self._state_dir is not None
        return os.path.join(self._state_dir, f"{session_id}.json")

    def _load_persisted(self) -> None:
        for name in sorted(os.listdir(self._state_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self._state_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    document = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue  # foreign or torn file: skip, never crash the server
            session_id = document.get("session_id") or name[: -len(".json")]
            self._records[session_id] = SessionRecord(
                session_id=session_id,
                request=document.get("request", {}),
                state=document.get("state", "done"),
                submitted_at=document.get("submitted_at", 0.0),
                started_at=document.get("started_at"),
                finished_at=document.get("finished_at"),
                events=document.get("events", []),
                payload=document.get("result"),
                error=document.get("error"),
            )

    def _persist(self, record: SessionRecord) -> None:
        if self._state_dir is None:
            return
        path = self._session_path(record.session_id)
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(record.persistable(), handle, sort_keys=True)
        os.replace(tmp_path, path)

    # -- lifecycle ---------------------------------------------------------------

    def create(self, request_description: dict[str, Any]) -> SessionRecord:
        record = SessionRecord(
            session_id=uuid.uuid4().hex,
            request=request_description,
            submitted_at=time.time(),
        )
        with self._lock:
            self._records[record.session_id] = record
        return record

    def get(self, session_id: str) -> Optional[SessionRecord]:
        with self._lock:
            return self._records.get(session_id)

    def session_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._records)

    def mark_running(self, session_id: str) -> None:
        with self._lock:
            record = self._records[session_id]
            record.state = "running"
            record.started_at = time.time()

    def add_event(self, session_id: str, event: dict[str, Any]) -> None:
        """Append a progress event and fan it out to live subscribers."""
        with self._lock:
            record = self._records[session_id]
            record.events.append(event)
            subscribers = list(record.subscribers)
        self._notify(subscribers, event)

    def finish(
        self,
        session_id: str,
        payload: Optional[dict[str, Any]],
        error: Optional[str] = None,
    ) -> SessionRecord:
        """Move a record to its terminal state, persist it, close streams."""
        with self._lock:
            record = self._records[session_id]
            record.state = "failed" if error is not None else "done"
            record.payload = payload
            record.error = error
            record.finished_at = time.time()
            subscribers = list(record.subscribers)
            record.subscribers.clear()
        self._persist(record)
        self._notify(subscribers, STREAM_END)
        return record

    # -- streaming ---------------------------------------------------------------

    def _notify(self, subscribers: list, event: Any) -> None:
        if not subscribers or self.loop is None:
            return
        for queue in subscribers:
            self.loop.call_soon_threadsafe(queue.put_nowait, event)

    def subscribe(self, session_id: str) -> Optional[tuple[list, Any]]:
        """Open an event stream: ``(past_events, queue_or_None)``.

        Must be called on the loop thread.  The replay list and the queue
        registration happen under one lock acquisition, so no event can fall
        between replay and live delivery.  For a terminal record the queue is
        ``None`` — the stream is just the replay.
        """
        with self._lock:
            record = self._records.get(session_id)
            if record is None:
                return None
            past = list(record.events)
            if record.state in _TERMINAL_STATES:
                return past, None
            queue: asyncio.Queue = asyncio.Queue()
            record.subscribers.append(queue)
            return past, queue
