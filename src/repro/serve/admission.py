"""Admission control: bounded queueing and rate limiting for the server.

The serving layer accepts work faster than it can negotiate it; without a
bound, a sustained overload grows the queue (and every queued request's
latency) without limit.  :class:`AdmissionController` puts two independent
gates in front of ``POST /submit``:

* a **bounded admission queue** — at most ``max_queue`` requests may be
  accepted-but-unfinished at once.  The counter covers the whole in-server
  lifetime of a request (coalescing buffer, worker execution), so the bound
  is on real in-flight work, not just on one internal buffer;
* a **token bucket** — a sustained rate limit of ``rate_limit`` admissions
  per second with a burst allowance of ``burst`` tokens, so a short burst
  rides through while a sustained flood is shed at the configured rate.

A request failing either gate is *shed*: the server answers ``429`` with a
machine-readable reason (``"queue_full"`` / ``"rate_limited"``) and a
``Retry-After`` hint, and the shed is counted per reason in
:class:`~repro.serve.metrics.ServeMetrics`.  Shedding is deliberately the
*first* thing that happens to an overload — every shed request terminates in
microseconds with an honest answer instead of queueing toward a timeout.

Both gates take an injectable monotonic ``clock`` so the tests drive them
deterministically; the production default is :func:`time.monotonic`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

#: Shed reasons (the machine-readable ``reason`` field of a 429 body).
REASON_QUEUE_FULL = "queue_full"
REASON_RATE_LIMITED = "rate_limited"

#: Fallback ``Retry-After`` hint (seconds) when the controller cannot derive
#: a better one (queue-full with no completion observed yet).
DEFAULT_RETRY_AFTER = 1.0


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission attempt.

    ``admitted`` requests own one queue slot until
    :meth:`AdmissionController.release` is called for them; shed requests
    carry the machine-readable ``reason`` and a ``retry_after`` hint
    (seconds, rounded up to whole seconds on the HTTP header).
    """

    admitted: bool
    reason: Optional[str] = None
    retry_after: float = 0.0


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``try_take`` is O(1) and lazy — tokens accrue on demand from the elapsed
    clock time, so there is no refill thread.  When the bucket is empty the
    returned hint is the exact time until one token accrues.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate_limit must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst < 1:
            raise ValueError("burst must allow at least one token")
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_take(self) -> tuple[bool, float]:
        """Take one token: ``(True, 0.0)`` or ``(False, seconds_until_one)``."""
        now = self._clock()
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate


class AdmissionController:
    """Bounded admission queue + token-bucket rate limiter.

    ``try_admit`` runs on the server's loop thread; ``release`` is called
    from worker threads when a session reaches a terminal state, so the slot
    accounting is lock-protected.  Either gate may be disabled by passing
    ``None`` (an unbounded queue / no rate limit).
    """

    def __init__(
        self,
        max_queue: Optional[int] = None,
        rate_limit: Optional[float] = None,
        burst: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be at least 1 (or None for unbounded)")
        self.max_queue = max_queue
        self._bucket = (
            TokenBucket(rate_limit, burst, clock) if rate_limit is not None else None
        )
        self._clock = clock
        self._lock = threading.Lock()
        self._in_flight = 0
        #: EWMA of observed completion latency, the queue-full Retry-After hint.
        self._mean_busy_seconds: Optional[float] = None

    # -- admission ---------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def try_admit(self) -> AdmissionDecision:
        """Attempt to admit one request, taking a queue slot on success."""
        with self._lock:
            if self.max_queue is not None and self._in_flight >= self.max_queue:
                return AdmissionDecision(
                    admitted=False,
                    reason=REASON_QUEUE_FULL,
                    retry_after=self._queue_full_hint(),
                )
            if self._bucket is not None:
                ok, retry_after = self._bucket.try_take()
                if not ok:
                    return AdmissionDecision(
                        admitted=False,
                        reason=REASON_RATE_LIMITED,
                        retry_after=max(retry_after, 0.001),
                    )
            self._in_flight += 1
            return AdmissionDecision(admitted=True)

    def force_admit(self) -> None:
        """Take a queue slot unconditionally.

        Used for journaled in-flight sessions replayed on restart: they were
        already admitted by the previous incarnation of the server, so they
        bypass both gates but still occupy slots (new traffic sees the true
        backlog).
        """
        with self._lock:
            self._in_flight += 1

    def release(self, busy_seconds: Optional[float] = None) -> None:
        """Return one queue slot; ``busy_seconds`` feeds the Retry-After hint."""
        with self._lock:
            self._in_flight -= 1
            if self._in_flight < 0:  # defensive: a double release is a bug
                self._in_flight = 0
            if busy_seconds is not None and busy_seconds >= 0:
                if self._mean_busy_seconds is None:
                    self._mean_busy_seconds = busy_seconds
                else:
                    self._mean_busy_seconds += 0.2 * (
                        busy_seconds - self._mean_busy_seconds
                    )

    def _queue_full_hint(self) -> float:
        """Seconds until a slot plausibly frees (held lock required)."""
        if self._mean_busy_seconds is None:
            return DEFAULT_RETRY_AFTER
        return max(0.05, min(60.0, self._mean_busy_seconds))
