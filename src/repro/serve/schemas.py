"""Request schemas and the canonical result payload of the serving layer.

A serve request is a JSON document with two objects mirroring the façade's
own vocabulary::

    {
      "scenario": {"family": "synthetic", "households": 200, "seed": 7,
                   "method": "reward_tables", "beta": 1.5},
      "config":   {"max_simulation_rounds": 200,
                   "fault_plan": {"seed": 3, "crash_rate": 0.05}},
      "backend":  "auto"
    }

``scenario`` carries the :class:`~repro.api.builder.ScenarioBuilder` knobs,
``config`` the :class:`~repro.api.config.EngineConfig` fields and ``backend``
the engine choice (``"auto"`` lets the server coalesce the request into a
batched kernel pass when it qualifies).  Validation follows the
:mod:`repro.core.modes` convention: unknown keys and invalid values fail at
parse time with one canonical message naming the accepted options, so a
typo'd request is a 400 with a useful body instead of a silently different
negotiation.

:func:`result_payload` is the canonical JSON serialisation of a
:class:`~repro.core.results.NegotiationResult`.  The serving layer's
bit-identity contract is stated over it: the payload a served request
resolves to equals the payload of a solo ``repro.api.run`` of the same
request, byte for byte (JSON float serialisation is shortest-round-trip
``repr``, so two payloads agree exactly iff every float is the same double).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional

from repro.api.config import EngineConfig
from repro.core.results import NegotiationResult
from repro.core.scenario import (
    Scenario,
    paper_prototype_scenario,
    synthetic_default_method,
    synthetic_population,
)
from repro.negotiation.methods.offer import OfferMethod
from repro.negotiation.methods.request_for_bids import RequestForBidsMethod
from repro.runtime.faults import FaultPlan

#: Scenario families the server builds.
SERVE_FAMILIES: tuple[str, ...] = ("synthetic", "paper")

#: Announcement methods the server resolves by name (the builder's names).
SERVE_METHODS: tuple[str, ...] = ("reward_tables", "offer", "request_for_bids")

#: Backends a request may pin.  ``"auto"`` (default) lets the server route:
#: vectorized-qualifying requests coalesce into batched kernel passes,
#: everything else runs solo on the backend the façade would pick.
SERVE_BACKENDS: tuple[str, ...] = ("auto", "object", "vectorized", "sharded")

_SCENARIO_KEYS = {
    "family", "households", "seed", "cold_snap", "planning", "method",
    "beta", "max_reward", "max_allowed_overuse",
}
_CONFIG_KEYS = {
    "seed", "max_simulation_rounds", "check_protocol", "retain_message_log",
    "include_producer", "include_external_world", "with_resource_consumers",
    "shards", "shard_threshold", "fault_plan", "rounds",
}
_FAULT_PLAN_KEYS = {field.name for field in dataclasses.fields(FaultPlan)}
_TOP_LEVEL_KEYS = {"scenario", "config", "backend", "deadline_ms"}

#: ``NegotiationResult.metadata`` keys that are part of the canonical
#: payload.  Keys outside the whitelist (``backend_rejections`` diagnostics,
#: future additions) are execution-planner internals and excluded so served
#: and solo payloads compare equal.
_METADATA_KEYS = ("backend", "shards", "faults")


class RequestValidationError(ValueError):
    """A serve request failed schema validation (maps to HTTP 400)."""


def _require_mapping(value: Any, where: str) -> dict:
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise RequestValidationError(f"{where} must be a JSON object")
    return value


def _reject_unknown_keys(mapping: dict, allowed: set, where: str) -> None:
    unknown = sorted(set(mapping) - allowed)
    if unknown:
        raise RequestValidationError(
            f"unknown {where} key(s) {', '.join(map(repr, unknown))}; "
            f"accepted keys: {', '.join(sorted(allowed))}"
        )


def validate_family(family: str) -> str:
    """Return ``family`` or raise naming the accepted scenario families."""
    if family not in SERVE_FAMILIES:
        raise RequestValidationError(
            f"unknown scenario family {family!r}; expected one of {SERVE_FAMILIES}"
        )
    return family


def validate_serve_backend(backend: str) -> str:
    """Return ``backend`` or raise naming the accepted serve backends."""
    if backend not in SERVE_BACKENDS:
        raise RequestValidationError(
            f"unknown backend {backend!r}; expected one of {SERVE_BACKENDS}"
        )
    return backend


@dataclass(frozen=True)
class ScenarioSpec:
    """A validated, hashable description of the scenario to negotiate.

    Frozen and hashable so it can key the server's population cache:
    two requests about the same town share one generated
    :class:`~repro.agents.population.CustomerPopulation` (read-only during
    negotiation) while each gets a fresh — stateful — method object.
    """

    family: str = "synthetic"
    households: int = 50
    seed: int = 0
    cold_snap: bool = True
    planning: str = "columnar"
    method: str = "reward_tables"
    beta: Optional[float] = None
    max_reward: Optional[float] = None
    max_allowed_overuse: Optional[float] = None

    @classmethod
    def from_mapping(cls, raw: Any) -> "ScenarioSpec":
        mapping = _require_mapping(raw, '"scenario"')
        _reject_unknown_keys(mapping, _SCENARIO_KEYS, '"scenario"')
        family = validate_family(str(mapping.get("family", "synthetic")))
        method = str(mapping.get("method", "reward_tables"))
        if method not in SERVE_METHODS:
            raise RequestValidationError(
                f"unknown method {method!r}; expected one of {SERVE_METHODS}"
            )
        if family == "paper":
            for key in ("households", "seed", "cold_snap", "planning"):
                if key in mapping:
                    raise RequestValidationError(
                        f'"scenario.{key}" configures the synthetic population; '
                        f"the calibrated paper scenario has a fixed population "
                        f"of 20 customers"
                    )
            if method != "reward_tables":
                raise RequestValidationError(
                    "the calibrated paper scenario uses its own calibrated "
                    "reward-tables method; request other methods on a "
                    "synthetic scenario"
                )
        elif "max_allowed_overuse" in mapping:
            raise RequestValidationError(
                '"scenario.max_allowed_overuse" is a paper-scenario parameter; '
                "synthetic populations derive it from the generated capacity"
            )
        if method != "reward_tables":
            for key in ("beta", "max_reward"):
                if key in mapping:
                    raise RequestValidationError(
                        f'"scenario.{key}" only applies to the reward-tables '
                        f"method, not {method!r}"
                    )
        try:
            households = int(mapping.get("households", 50))
            if households <= 0:
                raise RequestValidationError("household count must be positive")
            spec = cls(
                family=family,
                households=households,
                seed=int(mapping.get("seed", 0)),
                cold_snap=bool(mapping.get("cold_snap", True)),
                planning=str(mapping.get("planning", "columnar")),
                method=method,
                beta=(
                    float(mapping["beta"]) if mapping.get("beta") is not None else None
                ),
                max_reward=(
                    float(mapping["max_reward"])
                    if mapping.get("max_reward") is not None
                    else None
                ),
                max_allowed_overuse=(
                    float(mapping["max_allowed_overuse"])
                    if mapping.get("max_allowed_overuse") is not None
                    else None
                ),
            )
        except RequestValidationError:
            raise
        except (TypeError, ValueError) as error:
            raise RequestValidationError(f'invalid "scenario" value: {error}') from None
        if spec.beta is not None and spec.beta <= 0:
            raise RequestValidationError("beta must be positive")
        if spec.max_reward is not None and spec.max_reward <= 0:
            raise RequestValidationError("max_reward must be positive")
        if spec.max_allowed_overuse is not None and spec.max_allowed_overuse < 0:
            raise RequestValidationError("max allowed overuse must be non-negative")
        # Planning mode validation via the canonical validator.
        from repro.core.modes import validate_planning_mode

        try:
            validate_planning_mode(spec.planning)
        except ValueError as error:
            raise RequestValidationError(str(error)) from None
        return spec

    # -- construction -----------------------------------------------------------

    def population_key(self) -> Optional[tuple]:
        """Cache key of the (immutable) population this spec generates."""
        if self.family != "synthetic":
            return None
        return ("synthetic", self.households, self.seed, self.cold_snap, self.planning)

    def build_scenario(self, population_cache: Optional[dict] = None) -> Scenario:
        """Materialise the scenario, generating or reusing its population.

        The construction goes through the same factories as
        :class:`~repro.api.builder.ScenarioBuilder` (``synthetic_population``
        + ``synthetic_default_method`` are exactly what
        :func:`~repro.core.scenario.synthetic_scenario` calls), so a served
        scenario is value-identical to the one a solo ``repro.api.run`` call
        would negotiate.  Only the population — deterministic and read-only —
        is cached; the method object holds per-run negotiation state and is
        built fresh for every request.
        """
        if self.family == "paper":
            kwargs: dict[str, Any] = {}
            if self.beta is not None:
                kwargs["beta"] = self.beta
            if self.max_reward is not None:
                kwargs["max_reward"] = self.max_reward
            if self.max_allowed_overuse is not None:
                kwargs["max_allowed_overuse"] = self.max_allowed_overuse
            return paper_prototype_scenario(**kwargs)
        key = self.population_key()
        cached = population_cache.get(key) if population_cache is not None else None
        if cached is None:
            cached = synthetic_population(
                num_households=self.households,
                seed=self.seed,
                cold_snap=self.cold_snap,
                planning=self.planning,
            )
            if population_cache is not None:
                population_cache[key] = cached
        population, weather = cached
        if self.method == "offer":
            method = OfferMethod()
        elif self.method == "request_for_bids":
            method = RequestForBidsMethod()
        else:
            method_kwargs: dict[str, Any] = {}
            if self.beta is not None:
                method_kwargs["beta"] = self.beta
            if self.max_reward is not None:
                method_kwargs["max_reward"] = self.max_reward
            method = synthetic_default_method(**method_kwargs)
        return Scenario(
            name=f"synthetic_{self.households}",
            population=population,
            method=method,
            description=(
                f"Synthetic population of {self.households} households on a "
                f"{'severe-cold' if self.cold_snap else 'mild'} day."
            ),
            weather=weather,
        )


@dataclass(frozen=True)
class ServeRequest:
    """One validated negotiation request: scenario spec + engine config + backend.

    ``deadline_ms`` is the caller's *latency budget* in milliseconds, counted
    from the moment the server admits the request.  A request whose budget
    runs out before execution starts is failed fast with a
    ``deadline_exceeded`` record; one that exceeds it mid-negotiation is
    terminated between rounds with partial progress recorded.  The deadline
    bounds *waiting*, not the negotiation arithmetic — an admitted request
    that finishes in budget is bit-identical to an undeadlined one.
    """

    scenario: ScenarioSpec
    config: EngineConfig
    backend: str = "auto"
    deadline_ms: Optional[int] = None

    @classmethod
    def from_mapping(cls, raw: Any) -> "ServeRequest":
        """Parse and validate a decoded JSON request body."""
        mapping = _require_mapping(raw, "the request body")
        _reject_unknown_keys(mapping, _TOP_LEVEL_KEYS, "request")
        deadline_ms: Optional[int] = None
        if mapping.get("deadline_ms") is not None:
            try:
                deadline_ms = int(mapping["deadline_ms"])
            except (TypeError, ValueError):
                raise RequestValidationError(
                    '"deadline_ms" must be an integer millisecond budget'
                ) from None
            if deadline_ms <= 0:
                raise RequestValidationError('"deadline_ms" must be positive')
        scenario = ScenarioSpec.from_mapping(mapping.get("scenario"))
        config_raw = _require_mapping(mapping.get("config"), '"config"')
        _reject_unknown_keys(config_raw, _CONFIG_KEYS, '"config"')
        config_kwargs = dict(config_raw)
        fault_raw = config_kwargs.pop("fault_plan", None)
        if fault_raw is not None:
            fault_mapping = _require_mapping(fault_raw, '"config.fault_plan"')
            _reject_unknown_keys(
                fault_mapping, _FAULT_PLAN_KEYS, '"config.fault_plan"'
            )
            try:
                config_kwargs["fault_plan"] = FaultPlan(**fault_mapping)
            except (TypeError, ValueError) as error:
                raise RequestValidationError(
                    f'invalid "config.fault_plan": {error}'
                ) from None
        try:
            config = EngineConfig(**config_kwargs)
        except (TypeError, ValueError) as error:
            raise RequestValidationError(f'invalid "config": {error}') from None
        backend = validate_serve_backend(str(mapping.get("backend", "auto")))
        return cls(
            scenario=scenario,
            config=config,
            backend=backend,
            deadline_ms=deadline_ms,
        )

    def without_deadline(self) -> "ServeRequest":
        """This request with the latency budget stripped.

        Journal replay re-runs accepted-but-unfinished sessions after a
        restart; their original budgets have long passed, and the journal
        contract is a bit-identical *result*, so the replayed run is
        undeadlined.
        """
        if self.deadline_ms is None:
            return self
        return dataclasses.replace(self, deadline_ms=None)

    def describe(self) -> dict[str, Any]:
        """A JSON-safe echo of the request (stored on the session record).

        The echo re-parses through :meth:`from_mapping` to an equal request —
        the in-flight journal replays accepted sessions from it after a
        restart — so the paper family omits the synthetic-population knobs
        its validation rejects.
        """
        scenario = {
            key: value
            for key, value in dataclasses.asdict(self.scenario).items()
            if value is not None
        }
        if self.scenario.family == "paper":
            for key in ("households", "seed", "cold_snap", "planning"):
                scenario.pop(key, None)
        config = dataclasses.asdict(self.config)
        fault_plan = config.pop("fault_plan", None)
        config = {key: value for key, value in config.items() if key in _CONFIG_KEYS}
        if fault_plan is not None:
            config["fault_plan"] = fault_plan
        description = {"scenario": scenario, "config": config, "backend": self.backend}
        if self.deadline_ms is not None:
            description["deadline_ms"] = self.deadline_ms
        return description


def result_payload(result: NegotiationResult) -> dict[str, Any]:
    """The canonical JSON-safe serialisation of a negotiation result.

    Serving a request and running it solo through ``repro.api.run`` produce
    byte-identical payloads (``json.dumps(..., sort_keys=True)``) — the
    serving layer's determinism contract, enforced by the coalescing tests.
    """
    record = result.record
    termination = record.termination_reason
    metadata: dict[str, Any] = {}
    for key in _METADATA_KEYS:
        if key in result.metadata:
            metadata[key] = result.metadata[key]
    return {
        "scenario": result.scenario_name,
        "method": result.method_name,
        "simulation_rounds": result.simulation_rounds,
        "rounds": result.rounds,
        "messages_sent": result.messages_sent,
        "total_reward_paid": result.total_reward_paid,
        "degraded_households": result.degraded_households,
        "initial_overuse": record.initial_overuse,
        "final_overuse": record.final_overuse,
        "termination_reason": termination.value if termination is not None else None,
        "overuse_trajectory": list(record.overuse_trajectory),
        "customer_outcomes": {
            customer: {
                "final_bid_cutdown": outcome.final_bid_cutdown,
                "awarded": outcome.awarded,
                "committed_cutdown": outcome.committed_cutdown,
                "reward": outcome.reward,
                "surplus": outcome.surplus,
            }
            for customer, outcome in result.customer_outcomes.items()
        },
        "metadata": metadata,
    }
