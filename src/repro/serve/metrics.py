"""Serving metrics: queue depth, batch occupancy, kernel passes, latency.

One :class:`ServeMetrics` instance per server.  Writers are the batcher's
worker threads and the submit handler; the reader is the ``/metrics``
endpoint.  All mutation happens under one lock — the counters are touched a
handful of times per *batch* (not per household or per round), so contention
is irrelevant next to the negotiation work itself.

Latency quantiles come from a bounded reservoir of the most recent completed
request latencies (enough for a serving session's p50/p95 without unbounded
growth on long-lived servers).
"""

from __future__ import annotations

import threading
from typing import Any

#: Completed-request latencies retained for the quantile estimates.
_LATENCY_RESERVOIR = 1024


def _quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted, non-empty list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


class ServeMetrics:
    """Thread-safe serving counters behind the ``/metrics`` endpoint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._queue_depth = 0
        #: Coalesced combined-arena executions (one per flushed batch).
        self._kernel_passes = 0
        #: Requests that ran outside the coalescer.
        self._solo_passes = 0
        #: Members per coalesced pass, for the occupancy statistics.
        self._batch_sizes: list[int] = []
        self._fused_cycles = 0
        self._cycles = 0
        self._latencies: list[float] = []

    # -- writers -----------------------------------------------------------------

    def submitted(self) -> None:
        with self._lock:
            self._submitted += 1
            self._queue_depth += 1

    def dequeued(self, count: int = 1) -> None:
        with self._lock:
            self._queue_depth = max(0, self._queue_depth - count)

    def batch_executed(self, coalesced: int, solo: int, cycles: int, fused_cycles: int) -> None:
        """Record one :func:`~repro.serve.coalesce.execute_batch` call."""
        with self._lock:
            if coalesced > 0:
                self._kernel_passes += 1
                self._batch_sizes.append(coalesced)
            self._solo_passes += solo
            self._cycles += cycles
            self._fused_cycles += fused_cycles

    def solo_executed(self) -> None:
        """Record a request dispatched straight to a solo engine run."""
        with self._lock:
            self._solo_passes += 1

    def request_finished(self, latency_seconds: float, failed: bool = False) -> None:
        with self._lock:
            if failed:
                self._failed += 1
            else:
                self._completed += 1
            self._latencies.append(latency_seconds)
            if len(self._latencies) > _LATENCY_RESERVOIR:
                del self._latencies[: len(self._latencies) - _LATENCY_RESERVOIR]

    # -- reader ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe view of every counter (the ``/metrics`` body)."""
        with self._lock:
            sizes = list(self._batch_sizes)
            latencies = sorted(self._latencies)
            snapshot = {
                "requests_submitted": self._submitted,
                "requests_completed": self._completed,
                "requests_failed": self._failed,
                "queue_depth": self._queue_depth,
                "kernel_passes": self._kernel_passes,
                "solo_passes": self._solo_passes,
                "lockstep_cycles": self._cycles,
                "fused_kernel_cycles": self._fused_cycles,
            }
        snapshot["batch_occupancy"] = {
            "mean": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "max": max(sizes) if sizes else 0,
            "count": len(sizes),
        }
        snapshot["latency_seconds"] = {
            "p50": _quantile(latencies, 0.50),
            "p95": _quantile(latencies, 0.95),
            "count": len(latencies),
        }
        return snapshot
