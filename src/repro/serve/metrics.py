"""Serving metrics: queue depth, admission, batch occupancy, latency.

One :class:`ServeMetrics` instance per server.  Writers are the batcher's
worker threads, the watchdog and the submit handler; the reader is the
``/metrics`` endpoint.  All mutation happens under one lock — the counters
are touched a handful of times per *batch* (not per household or per round),
so contention is irrelevant next to the negotiation work itself.

Latency and queue-wait quantiles come from bounded reservoirs of the most
recent observations (enough for a serving session's p50/p95/p99 without
unbounded growth on long-lived servers).

The overload-facing counters added with admission control:

``requests_admitted`` / ``requests_shed``
    How submissions split at the admission gate; ``shed_reasons`` breaks the
    sheds down by machine-readable reason (``queue_full``/``rate_limited``).
``queue_wait_seconds``
    p50/p95/p99 of the time admitted requests spent queued before a worker
    picked them up — the number the admission bound exists to keep flat.
``deadline_exceeded_total``
    Requests that terminated because their ``deadline_ms`` budget ran out.
``watchdog_failures``
    Sessions failed by the batch watchdog because their worker batch got
    stuck or crashed without reporting.
``queue_depth_underflows``
    Times the queue-depth gauge would have gone negative.  The gauge is
    clamped at zero either way, but a nonzero underflow count means the
    submit/dequeue accounting has a bug — visible instead of silently hidden.
"""

from __future__ import annotations

import threading
from typing import Any

#: Completed-request latencies / queue waits retained for the quantiles.
_LATENCY_RESERVOIR = 1024


def _quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted, non-empty list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


class ServeMetrics:
    """Thread-safe serving counters behind the ``/metrics`` endpoint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._submitted = 0
        self._admitted = 0
        self._shed = 0
        self._shed_reasons: dict[str, int] = {}
        self._completed = 0
        self._failed = 0
        self._deadline_exceeded = 0
        self._watchdog_failures = 0
        self._queue_depth = 0
        self._queue_depth_underflows = 0
        #: Coalesced combined-arena executions (one per flushed batch).
        self._kernel_passes = 0
        #: Requests that ran outside the coalescer.
        self._solo_passes = 0
        #: Members per coalesced pass, for the occupancy statistics.
        self._batch_sizes: list[int] = []
        self._fused_cycles = 0
        self._cycles = 0
        self._latencies: list[float] = []
        self._queue_waits: list[float] = []

    # -- writers -----------------------------------------------------------------

    def submitted(self) -> None:
        """One valid submission admitted into the queue (legacy single call)."""
        self.admitted()

    def admitted(self) -> None:
        with self._lock:
            self._submitted += 1
            self._admitted += 1
            self._queue_depth += 1

    def shed(self, reason: str) -> None:
        """One valid submission rejected at the admission gate (HTTP 429)."""
        with self._lock:
            self._submitted += 1
            self._shed += 1
            self._shed_reasons[reason] = self._shed_reasons.get(reason, 0) + 1

    def dequeued(self, count: int = 1) -> None:
        with self._lock:
            if count > self._queue_depth:
                self._queue_depth_underflows += 1
            self._queue_depth = max(0, self._queue_depth - count)

    def queue_wait(self, seconds: float) -> None:
        """Record how long one admitted request waited before execution."""
        with self._lock:
            self._queue_waits.append(max(0.0, seconds))
            if len(self._queue_waits) > _LATENCY_RESERVOIR:
                del self._queue_waits[: len(self._queue_waits) - _LATENCY_RESERVOIR]

    def batch_executed(self, coalesced: int, solo: int, cycles: int, fused_cycles: int) -> None:
        """Record one :func:`~repro.serve.coalesce.execute_batch` call."""
        with self._lock:
            if coalesced > 0:
                self._kernel_passes += 1
                self._batch_sizes.append(coalesced)
            self._solo_passes += solo
            self._cycles += cycles
            self._fused_cycles += fused_cycles

    def solo_executed(self) -> None:
        """Record a request dispatched straight to a solo engine run."""
        with self._lock:
            self._solo_passes += 1

    def request_finished(
        self,
        latency_seconds: float,
        failed: bool = False,
        expired: bool = False,
    ) -> None:
        with self._lock:
            if expired:
                self._deadline_exceeded += 1
                self._failed += 1
            elif failed:
                self._failed += 1
            else:
                self._completed += 1
            self._latencies.append(latency_seconds)
            if len(self._latencies) > _LATENCY_RESERVOIR:
                del self._latencies[: len(self._latencies) - _LATENCY_RESERVOIR]

    def watchdog_failure(self, count: int = 1) -> None:
        """Record sessions failed by the stuck-batch watchdog."""
        with self._lock:
            self._watchdog_failures += count

    # -- reader ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe view of every counter (the ``/metrics`` body)."""
        with self._lock:
            sizes = list(self._batch_sizes)
            latencies = sorted(self._latencies)
            queue_waits = sorted(self._queue_waits)
            snapshot = {
                "requests_submitted": self._submitted,
                "requests_admitted": self._admitted,
                "requests_shed": self._shed,
                "shed_reasons": dict(self._shed_reasons),
                "requests_completed": self._completed,
                "requests_failed": self._failed,
                "deadline_exceeded_total": self._deadline_exceeded,
                "watchdog_failures": self._watchdog_failures,
                "queue_depth": self._queue_depth,
                "queue_depth_underflows": self._queue_depth_underflows,
                "kernel_passes": self._kernel_passes,
                "solo_passes": self._solo_passes,
                "lockstep_cycles": self._cycles,
                "fused_kernel_cycles": self._fused_cycles,
            }
        snapshot["batch_occupancy"] = {
            "mean": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "max": max(sizes) if sizes else 0,
            "count": len(sizes),
        }
        snapshot["latency_seconds"] = {
            "p50": _quantile(latencies, 0.50),
            "p95": _quantile(latencies, 0.95),
            "count": len(latencies),
        }
        snapshot["queue_wait_seconds"] = {
            "p50": _quantile(queue_waits, 0.50),
            "p95": _quantile(queue_waits, 0.95),
            "p99": _quantile(queue_waits, 0.99),
            "count": len(queue_waits),
        }
        return snapshot
