"""Negotiation-as-a-service: the serving layer over the engine façade.

``python -m repro serve`` exposes :func:`repro.api.run` as a long-lived
stdlib-only HTTP service with request-coalescing micro-batching: compatible
concurrent requests are packed into one combined
:class:`~repro.agents.vectorized.VectorizedPopulation` kernel arena and
negotiated in lockstep, each request's result bit-identical to a solo
``repro.api.run`` call.  See :mod:`repro.serve.server` for the endpoints,
:mod:`repro.serve.coalesce` for the batching semantics and the README's
*Serving* section for a quickstart.
"""

from repro.serve.admission import AdmissionController, AdmissionDecision, TokenBucket
from repro.serve.batcher import CoalescingBatcher
from repro.serve.client import (
    CircuitOpenError,
    RequestFailed,
    RetriesExhausted,
    ServeClient,
    ServeClientError,
)
from repro.serve.coalesce import execute_batch, request_coalesces, run_solo
from repro.serve.metrics import ServeMetrics
from repro.serve.repository import SessionRecord, SessionRepository
from repro.serve.schemas import (
    RequestValidationError,
    ScenarioSpec,
    ServeRequest,
    result_payload,
)
from repro.serve.server import NegotiationServer, ServerThread

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "CircuitOpenError",
    "CoalescingBatcher",
    "NegotiationServer",
    "RequestFailed",
    "RequestValidationError",
    "RetriesExhausted",
    "ScenarioSpec",
    "ServeClient",
    "ServeClientError",
    "ServeMetrics",
    "ServeRequest",
    "ServerThread",
    "SessionRecord",
    "SessionRepository",
    "TokenBucket",
    "execute_batch",
    "request_coalesces",
    "result_payload",
    "run_solo",
]
