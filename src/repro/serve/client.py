"""Self-healing serve client: retries, circuit breaking, stream resume.

:class:`ServeClient` is the stdlib-only counterpart of the server's overload
semantics.  The server answers honestly under pressure — ``429`` with
``Retry-After`` when shedding, ``504`` when a result wait times out,
connection drops when it is killed — and the client turns those answers into
self-healing behaviour instead of surfacing every transient to the caller:

* **capped jittered-exponential retry** — retryable failures (429, 5xx,
  connection errors) back off exponentially with full jitter, capped per
  attempt and in attempt count; a ``429``'s ``Retry-After`` hint overrides
  the computed backoff floor, so a shedding server is never hammered faster
  than it asked to be;
* **circuit breaker** — after ``breaker_threshold`` *consecutive* transport
  failures the breaker opens and calls fail fast with
  :class:`CircuitOpenError` for ``breaker_cooldown`` seconds; the first call
  after the cooldown is the half-open probe, and its success closes the
  breaker.  A fleet of clients stops stampeding a struggling server within
  one threshold's worth of attempts;
* **stream resume** — ``stream()`` yields per-round events; if the
  connection drops mid-stream, the client reconnects (through the same
  retry policy) and skips the events it has already yielded — the server
  replays streams from the start, so the resumed iterator is gapless and
  duplicate-free.

Everything is ``urllib`` over the server's ``Connection: close`` HTTP/1.1;
the jitter draws from a seeded :class:`random.Random` so tests are
deterministic.  The transport is injectable for unit tests.

Not retryable, by design: ``400`` (the request itself is invalid — retrying
cannot fix it) and ``404`` (the session does not exist).
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Iterator, Optional

#: HTTP status codes worth retrying: shedding and transient server errors.
RETRYABLE_STATUS = frozenset({429, 500, 502, 503, 504})


class ServeClientError(RuntimeError):
    """Base class of the client's failures."""


class CircuitOpenError(ServeClientError):
    """The circuit breaker is open; the call failed fast without a request."""


class RetriesExhausted(ServeClientError):
    """Every retry attempt failed; carries the last underlying failure."""

    def __init__(self, message: str, last_error: Optional[BaseException] = None):
        super().__init__(message)
        self.last_error = last_error


class RequestFailed(ServeClientError):
    """A non-retryable HTTP failure (4xx other than 429)."""

    def __init__(self, status: int, body: dict[str, Any]):
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


class _Response:
    """Transport-neutral response: status, headers (lower-cased), body bytes."""

    def __init__(self, status: int, headers: dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> dict[str, Any]:
        return json.loads(self.body.decode("utf-8"))


def _urllib_transport(
    url: str, data: Optional[bytes], timeout: float
) -> _Response:
    """The default transport: one ``urllib`` request → :class:`_Response`."""
    request = urllib.request.Request(
        url,
        data=data,
        method="POST" if data is not None else "GET",
        headers={"Content-Type": "application/json"} if data is not None else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            headers = {k.lower(): v for k, v in response.headers.items()}
            return _Response(response.status, headers, response.read())
    except urllib.error.HTTPError as error:
        headers = {k.lower(): v for k, v in error.headers.items()}
        return _Response(error.code, headers, error.read())


class ServeClient:
    """A self-healing client for one negotiation server.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of the server.
    max_retries:
        Retryable-failure budget per logical call (so a call makes at most
        ``max_retries + 1`` attempts).
    backoff_base / backoff_cap:
        Exponential backoff: attempt ``k`` sleeps a uniform draw from
        ``[0, min(cap, base * 2**k)]`` (full jitter), floored at a ``429``'s
        ``Retry-After`` when the server supplied one.
    breaker_threshold / breaker_cooldown:
        Consecutive transport-level failures that open the circuit, and how
        long it stays open before the half-open probe.
    timeout:
        Per-attempt socket timeout (seconds).
    rng / sleep / clock / transport:
        Injectable randomness, sleeper, monotonic clock and transport for
        deterministic tests.
    """

    def __init__(
        self,
        base_url: str,
        max_retries: int = 5,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 10.0,
        timeout: float = 60.0,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        transport: Callable[[str, Optional[bytes], float], _Response] = _urllib_transport,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        self.base_url = base_url.rstrip("/")
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.timeout = timeout
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._clock = clock
        self._transport = transport
        self._consecutive_failures = 0
        self._breaker_open_until: Optional[float] = None
        #: Totals for observability (the overload bench reads these).
        self.retries_performed = 0
        self.breaker_trips = 0

    # -- circuit breaker ---------------------------------------------------------

    @property
    def breaker_open(self) -> bool:
        return (
            self._breaker_open_until is not None
            and self._clock() < self._breaker_open_until
        )

    def _breaker_gate(self) -> None:
        if self.breaker_open:
            raise CircuitOpenError(
                f"circuit open for another "
                f"{self._breaker_open_until - self._clock():.2f}s "
                f"after {self._consecutive_failures} consecutive failures"
            )

    def _record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.breaker_threshold:
            self._breaker_open_until = self._clock() + self.breaker_cooldown
            self.breaker_trips += 1

    def _record_success(self) -> None:
        self._consecutive_failures = 0
        self._breaker_open_until = None

    # -- retrying request core ---------------------------------------------------

    def _backoff(self, attempt: int, floor: float = 0.0) -> float:
        ceiling = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        return max(floor, self._rng.uniform(0.0, ceiling))

    def _request(self, path: str, body: Optional[dict] = None) -> _Response:
        """One logical call: breaker gate, attempts, jittered backoff."""
        self._breaker_gate()
        data = json.dumps(body).encode("utf-8") if body is not None else None
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            if attempt > 0:
                self.retries_performed += 1
            try:
                response = self._transport(self.base_url + path, data, self.timeout)
            except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as error:
                last_error = error
                self._record_failure()
                if self.breaker_open or attempt == self.max_retries:
                    break
                self._sleep(self._backoff(attempt))
                continue
            if response.status in RETRYABLE_STATUS:
                last_error = None
                # A shed (429) or a result-wait expiry (504) is the server
                # working as designed, not a transport failure: neither
                # trips the breaker.
                if response.status not in (429, 504):
                    self._record_failure()
                    if self.breaker_open:
                        break
                if attempt == self.max_retries:
                    raise RetriesExhausted(
                        f"{path}: HTTP {response.status} after "
                        f"{self.max_retries + 1} attempts: "
                        f"{response.body[:200].decode('utf-8', 'replace')}"
                    )
                floor = 0.0
                retry_after = response.headers.get("retry-after")
                if retry_after is not None:
                    try:
                        floor = float(retry_after)
                    except ValueError:
                        pass
                self._sleep(self._backoff(attempt, floor=floor))
                continue
            if response.status >= 400:
                self._record_success()  # the server answered; transport is fine
                raise RequestFailed(response.status, _safe_json(response))
            self._record_success()
            return response
        raise RetriesExhausted(
            f"{path}: transport failed after {self.max_retries + 1} attempts: "
            f"{last_error}",
            last_error=last_error,
        )

    # -- public API --------------------------------------------------------------

    def submit(self, body: dict[str, Any]) -> dict[str, Any]:
        """POST the request body; returns the 202 acceptance document.

        Retries through shedding: a ``429`` backs off (honouring
        ``Retry-After``) and resubmits, so a caller that can wait rides out
        an overload instead of handling it.
        """
        return self._request("/submit", body=body).json()

    def status(self, session_id: str) -> dict[str, Any]:
        return self._request(f"/status/{session_id}").json()

    def health(self) -> dict[str, Any]:
        return self._request("/healthz").json()

    def metrics(self) -> dict[str, Any]:
        return self._request("/metrics").json()

    def result(
        self,
        session_id: str,
        wait: bool = True,
        wait_timeout: Optional[float] = None,
        overall_timeout: Optional[float] = None,
    ) -> dict[str, Any]:
        """Fetch a session's terminal record, riding out 504 wait expiries.

        With ``wait=True`` the server blocks up to its own cap per request;
        each ``504`` (still running — not a failure) re-enters the wait until
        ``overall_timeout`` elapses.  Returns the ``/result`` body.
        """
        deadline = (
            self._clock() + overall_timeout if overall_timeout is not None else None
        )
        while True:
            suffix = ""
            if wait:
                suffix = "?wait=1"
                if wait_timeout is not None:
                    suffix += f"&timeout={wait_timeout}"
            try:
                return self._request(f"/result/{session_id}{suffix}").json()
            except RetriesExhausted:
                if not wait:
                    raise
                if deadline is not None and self._clock() >= deadline:
                    raise
                # 504s exhausted the per-call budget but the session is still
                # making progress server-side; keep waiting until our own
                # overall deadline says otherwise.
                continue

    def stream(self, session_id: str) -> Iterator[dict[str, Any]]:
        """Yield the session's NDJSON events, resuming across disconnects.

        The server replays every stream from the first event, so after a
        disconnect the client reconnects and silently skips the ``seen``
        prefix — the caller observes one gapless, duplicate-free sequence
        ending with the ``done`` event.
        """
        seen = 0
        attempt = 0
        while True:
            self._breaker_gate()
            try:
                # `index` is the event's position within THIS connection;
                # the first `seen` positions are the already-yielded prefix
                # the server replays on reconnect.
                for index, event in enumerate(self._stream_once(session_id)):
                    if index < seen:
                        continue
                    seen += 1
                    yield event
                    if event.get("event") == "done":
                        return
                # Stream ended without a done event: treat as a disconnect.
                raise ConnectionError("stream closed before the done event")
            except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as error:
                self._record_failure()
                if attempt >= self.max_retries:
                    raise RetriesExhausted(
                        f"/stream/{session_id}: disconnected after "
                        f"{attempt + 1} attempts: {error}",
                        last_error=error,
                    )
                self.retries_performed += 1
                self._sleep(self._backoff(attempt))
                attempt += 1

    def _stream_once(self, session_id: str) -> Iterator[dict[str, Any]]:
        """One streaming connection; line-by-line, raising on disconnect."""
        request = urllib.request.Request(
            f"{self.base_url}/stream/{session_id}", method="GET"
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            if response.status != 200:
                raise RequestFailed(
                    response.status, {"error": "stream rejected"}
                )
            for line in response:
                line = line.strip()
                if line:
                    self._record_success()
                    yield json.loads(line)


def _safe_json(response: _Response) -> dict[str, Any]:
    try:
        return response.json()
    except (ValueError, UnicodeDecodeError):
        return {"error": response.body[:200].decode("utf-8", "replace")}
