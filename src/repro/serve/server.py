"""The negotiation server: stdlib-only HTTP over asyncio streams.

``python -m repro serve`` binds this server.  The protocol is deliberately
minimal — HTTP/1.1 with ``Connection: close`` on every response, JSON bodies,
and newline-delimited JSON for the round stream — so any stdlib HTTP client
(``urllib``, ``http.client``, ``curl``) can drive it without a client
library.

Endpoints
---------

=============================  =====================================================
``POST /submit``               Enqueue a negotiation request → ``202`` with the
                               session id.  Invalid requests fail with ``400``
                               and the validation message.
``GET /status/<id>``           Lifecycle + progress (no result payload).
``GET /result/<id>``           Terminal record with the result payload;
                               ``?wait=1`` blocks until the session finishes.
``GET /stream/<id>``           Newline-delimited JSON: every per-round progress
                               event (replayed from the start, then live),
                               terminated by ``{"event": "done", ...}`` carrying
                               the result payload.
``GET /metrics``               Serving counters (queue depth, batch occupancy,
                               kernel passes, latency quantiles).
``GET /healthz``               Liveness probe.
=============================  =====================================================

The server owns one :class:`~repro.serve.repository.SessionRepository`, one
:class:`~repro.serve.metrics.ServeMetrics` and one
:class:`~repro.serve.batcher.CoalescingBatcher`; all request handling runs on
one asyncio loop while negotiations execute on the batcher's worker threads.
:class:`ServerThread` hosts the whole stack on a background thread for tests
and benchmarks.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from repro.serve.batcher import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT,
    CoalescingBatcher,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.repository import STREAM_END, SessionRepository
from repro.serve.schemas import RequestValidationError, ServeRequest

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8731

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


def _json_response(status: int, body: dict[str, Any]) -> bytes:
    payload = json.dumps(body, sort_keys=True).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("ascii")
    return head + payload


class NegotiationServer:
    """Negotiation-as-a-service on one asyncio loop."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait: float = DEFAULT_MAX_WAIT,
        workers: Optional[int] = None,
        state_dir: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.workers = workers
        self.state_dir = state_dir
        self.repository: Optional[SessionRepository] = None
        self.metrics: Optional[ServeMetrics] = None
        self.batcher: Optional[CoalescingBatcher] = None
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and build the serving stack."""
        loop = asyncio.get_running_loop()
        self.repository = SessionRepository(self.state_dir, loop=loop)
        self.metrics = ServeMetrics()
        self.batcher = CoalescingBatcher(
            self.repository,
            self.metrics,
            max_batch=self.max_batch,
            max_wait=self.max_wait,
            workers=self.workers,
        )
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        # With port 0 the OS picks; publish the bound port for clients.
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.batcher is not None:
            await self.batcher.close()

    async def run_forever(self) -> None:
        await self.start()
        print(f"repro serve listening on {self.base_url}", flush=True)
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # -- request handling --------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("ascii", "replace").split()
            if len(parts) < 2:
                return
            method, target = parts[0], parts[1]
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("ascii", "replace").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", "0") or 0)
            if length > 0:
                body = await reader.readexactly(length)
            await self._dispatch(method, target, body, writer)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # client went away mid-request; nothing to answer
        except Exception as error:  # never kill the accept loop on one request
            try:
                writer.write(
                    _json_response(500, {"error": f"{type(error).__name__}: {error}"})
                )
                await writer.drain()
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _dispatch(
        self, method: str, target: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        if path == "/submit":
            if method != "POST":
                writer.write(_json_response(405, {"error": "POST /submit"}))
                return
            await self._submit(body, writer)
            return
        if method != "GET":
            writer.write(_json_response(405, {"error": f"GET only: {path}"}))
            return
        if path == "/healthz":
            writer.write(_json_response(200, {"status": "ok"}))
            return
        if path == "/metrics":
            writer.write(_json_response(200, self.metrics.snapshot()))
            return
        for prefix, handler in (
            ("/status/", self._status),
            ("/result/", self._result),
            ("/stream/", self._stream),
        ):
            if path.startswith(prefix):
                await handler(path[len(prefix):], query, writer)
                return
        writer.write(_json_response(404, {"error": f"unknown endpoint {path!r}"}))

    async def _submit(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            raw = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            writer.write(_json_response(400, {"error": f"invalid JSON body: {error}"}))
            return
        try:
            request = ServeRequest.from_mapping(raw)
        except RequestValidationError as error:
            writer.write(_json_response(400, {"error": str(error)}))
            return
        self.metrics.submitted()
        record = self.repository.create(request.describe())
        self.batcher.submit(request, record)
        writer.write(
            _json_response(
                202, {"session_id": record.session_id, "state": record.state}
            )
        )

    async def _status(
        self, session_id: str, _query: dict, writer: asyncio.StreamWriter
    ) -> None:
        record = self.repository.get(session_id)
        if record is None:
            writer.write(_json_response(404, {"error": f"unknown session {session_id!r}"}))
            return
        writer.write(_json_response(200, record.status_view()))

    async def _result(
        self, session_id: str, query: dict, writer: asyncio.StreamWriter
    ) -> None:
        record = self.repository.get(session_id)
        if record is None:
            writer.write(_json_response(404, {"error": f"unknown session {session_id!r}"}))
            return
        wait = query.get("wait", ["0"])[-1] not in ("0", "false", "")
        if wait and record.state not in ("done", "failed"):
            subscription = self.repository.subscribe(session_id)
            if subscription is not None:
                _past, queue = subscription
                while queue is not None:
                    if await queue.get() is STREAM_END:
                        break
            record = self.repository.get(session_id)
        writer.write(_json_response(200, record.result_view()))

    async def _stream(
        self, session_id: str, _query: dict, writer: asyncio.StreamWriter
    ) -> None:
        subscription = self.repository.subscribe(session_id)
        if subscription is None:
            writer.write(_json_response(404, {"error": f"unknown session {session_id!r}"}))
            return
        past, queue = subscription
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
        )

        def _line(event: dict[str, Any]) -> bytes:
            return (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")

        for event in past:
            writer.write(_line(event))
        await writer.drain()
        if queue is not None:
            while True:
                event = await queue.get()
                if event is STREAM_END:
                    break
                writer.write(_line(event))
                await writer.drain()
        record = self.repository.get(session_id)
        final: dict[str, Any] = {
            "event": "done",
            "state": record.state,
            "result": record.payload,
        }
        if record.error is not None:
            final["error"] = record.error
        writer.write(_line(final))
        await writer.drain()


class ServerThread:
    """Hosts a :class:`NegotiationServer` on a background event-loop thread.

    The in-process harness used by the HTTP tests and the serving benchmark:
    ``start()`` returns once the socket is bound (with ``port=0`` the chosen
    port is published on ``server.port``); ``stop()`` tears the loop down.
    Usable as a context manager.
    """

    def __init__(self, **server_kwargs: Any) -> None:
        self._server_kwargs = server_kwargs
        self.server: Optional[NegotiationServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.stop()

    def start(self) -> NegotiationServer:
        self._thread = threading.Thread(
            target=self._run, name="serve-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("negotiation server did not start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("negotiation server failed to start") from self._startup_error
        return self.server

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        self.server = NegotiationServer(**self._server_kwargs)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as error:
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
            loop.run_until_complete(self.server.stop())
        finally:
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
