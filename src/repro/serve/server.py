"""The negotiation server: stdlib-only HTTP over asyncio streams.

``python -m repro serve`` binds this server.  The protocol is deliberately
minimal — HTTP/1.1 with ``Connection: close`` on every response, JSON bodies,
and newline-delimited JSON for the round stream — so any stdlib HTTP client
(``urllib``, ``http.client``, ``curl``) can drive it without a client
library.

Endpoints
---------

=============================  =====================================================
``POST /submit``               Enqueue a negotiation request → ``202`` with the
                               session id.  Invalid requests fail with ``400``
                               and the validation message; requests shed by
                               admission control fail with ``429``, a
                               ``Retry-After`` header and a machine-readable
                               reason (``queue_full`` / ``rate_limited``).
``GET /status/<id>``           Lifecycle + progress (no result payload).
``GET /result/<id>``           Terminal record with the result payload;
                               ``?wait=1`` blocks until the session finishes
                               or the (server-capped) ``timeout=`` seconds
                               elapse — expiry answers ``504`` with the
                               session's current status.
``GET /stream/<id>``           Newline-delimited JSON: every per-round progress
                               event (replayed from the start, then live),
                               terminated by ``{"event": "done", ...}`` carrying
                               the result payload.
``GET /metrics``               Serving counters (queue depth, admission/shed
                               counters, queue-wait and latency quantiles,
                               batch occupancy, kernel passes).
``GET /healthz``               Liveness probe.
=============================  =====================================================

The server owns one :class:`~repro.serve.repository.SessionRepository`, one
:class:`~repro.serve.metrics.ServeMetrics`, one
:class:`~repro.serve.admission.AdmissionController` and one
:class:`~repro.serve.batcher.CoalescingBatcher`; all request handling runs on
one asyncio loop while negotiations execute on the batcher's worker threads.
On startup, accepted-but-unfinished sessions found in the state directory's
in-flight journal are re-submitted for deterministic re-execution.
:class:`ServerThread` hosts the whole stack on a background thread for tests
and benchmarks.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import math
import threading
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from repro.serve.admission import AdmissionController
from repro.serve.batcher import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT,
    DEFAULT_WATCHDOG_TIMEOUT,
    CoalescingBatcher,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.repository import STREAM_END, SessionRecord, SessionRepository
from repro.serve.schemas import RequestValidationError, ServeRequest

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8731

#: Server-side cap (seconds) on ``GET /result/<id>?wait=1`` blocking; the
#: ``timeout=`` query parameter can only shorten it.
DEFAULT_RESULT_WAIT_CAP = 300.0

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


def _json_response(
    status: int,
    body: dict[str, Any],
    headers: Optional[dict[str, str]] = None,
) -> bytes:
    payload = json.dumps(body, sort_keys=True).encode("utf-8")
    extra = "".join(f"{name}: {value}\r\n" for name, value in (headers or {}).items())
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"{extra}"
        f"Connection: close\r\n\r\n"
    ).encode("ascii")
    return head + payload


class NegotiationServer:
    """Negotiation-as-a-service on one asyncio loop."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait: float = DEFAULT_MAX_WAIT,
        workers: Optional[int] = None,
        state_dir: Optional[str] = None,
        max_queue: Optional[int] = None,
        rate_limit: Optional[float] = None,
        burst: Optional[int] = None,
        default_deadline_ms: Optional[int] = None,
        watchdog_timeout: Optional[float] = DEFAULT_WATCHDOG_TIMEOUT,
        result_wait_cap: float = DEFAULT_RESULT_WAIT_CAP,
    ) -> None:
        self.host = host
        self.port = port
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.workers = workers
        self.state_dir = state_dir
        self.max_queue = max_queue
        self.rate_limit = rate_limit
        self.burst = burst
        self.default_deadline_ms = default_deadline_ms
        self.watchdog_timeout = watchdog_timeout
        if result_wait_cap <= 0:
            raise ValueError("result_wait_cap must be positive")
        self.result_wait_cap = result_wait_cap
        self.repository: Optional[SessionRepository] = None
        self.metrics: Optional[ServeMetrics] = None
        self.admission: Optional[AdmissionController] = None
        self.batcher: Optional[CoalescingBatcher] = None
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket, build the serving stack, replay journal."""
        loop = asyncio.get_running_loop()
        self.repository = SessionRepository(self.state_dir, loop=loop)
        self.metrics = ServeMetrics()
        self.admission = AdmissionController(
            max_queue=self.max_queue,
            rate_limit=self.rate_limit,
            burst=self.burst,
        )
        self.repository.add_finish_listener(self._on_session_finished)
        self.batcher = CoalescingBatcher(
            self.repository,
            self.metrics,
            max_batch=self.max_batch,
            max_wait=self.max_wait,
            workers=self.workers,
            watchdog_timeout=self.watchdog_timeout,
        )
        self._replay_journaled_sessions()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        # With port 0 the OS picks; publish the bound port for clients.
        self.port = self._server.sockets[0].getsockname()[1]

    def _on_session_finished(self, record: SessionRecord) -> None:
        """Finish listener: return the admission slot, feed the retry hint."""
        busy = None
        if record.finished_at is not None and record.submitted_at:
            busy = record.finished_at - record.submitted_at
        self.admission.release(busy)

    def _replay_journaled_sessions(self) -> None:
        """Re-run accepted-but-unfinished sessions from the in-flight journal.

        Each journaled request re-validates from its stored echo and re-enters
        the batcher under its original session id, so ``GET /result/<id>``
        eventually answers with a payload bit-identical to what an
        uninterrupted run would have produced (the engine is deterministic
        given the request).  Latency budgets are stripped — they bounded the
        original caller's wait, not the recovery.  Replayed sessions take
        admission slots unconditionally: they were admitted once already.
        """
        for record in self.repository.recovered_sessions():
            try:
                request = ServeRequest.from_mapping(record.request).without_deadline()
            except RequestValidationError as error:
                self.repository.finish(
                    record.session_id,
                    None,
                    error=f"journal replay failed validation: {error}",
                )
                continue
            self.admission.force_admit()
            self.metrics.admitted()
            self.batcher.submit(request, record)

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.batcher is not None:
            await self.batcher.close()
        if self.repository is not None:
            self.repository.close()

    async def run_forever(self) -> None:
        await self.start()
        print(f"repro serve listening on {self.base_url}", flush=True)
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # -- request handling --------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("ascii", "replace").split()
            if len(parts) < 2:
                return
            method, target = parts[0], parts[1]
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("ascii", "replace").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", "0") or 0)
            if length > 0:
                body = await reader.readexactly(length)
            await self._dispatch(method, target, body, writer)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # client went away mid-request; nothing to answer
        except Exception as error:  # never kill the accept loop on one request
            try:
                writer.write(
                    _json_response(500, {"error": f"{type(error).__name__}: {error}"})
                )
                await writer.drain()
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _dispatch(
        self, method: str, target: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        if path == "/submit":
            if method != "POST":
                writer.write(_json_response(405, {"error": "POST /submit"}))
                return
            await self._submit(body, writer)
            return
        if method != "GET":
            writer.write(_json_response(405, {"error": f"GET only: {path}"}))
            return
        if path == "/healthz":
            writer.write(_json_response(200, {"status": "ok"}))
            return
        if path == "/metrics":
            snapshot = self.metrics.snapshot()
            snapshot["admission"] = {
                "in_flight": self.admission.in_flight,
                "max_queue": self.admission.max_queue,
                "rate_limit": self.rate_limit,
            }
            writer.write(_json_response(200, snapshot))
            return
        for prefix, handler in (
            ("/status/", self._status),
            ("/result/", self._result),
            ("/stream/", self._stream),
        ):
            if path.startswith(prefix):
                await handler(path[len(prefix):], query, writer)
                return
        writer.write(_json_response(404, {"error": f"unknown endpoint {path!r}"}))

    async def _submit(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            raw = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            writer.write(_json_response(400, {"error": f"invalid JSON body: {error}"}))
            return
        try:
            request = ServeRequest.from_mapping(raw)
        except RequestValidationError as error:
            writer.write(_json_response(400, {"error": str(error)}))
            return
        decision = self.admission.try_admit()
        if not decision.admitted:
            self.metrics.shed(decision.reason)
            retry_after = max(1, math.ceil(decision.retry_after))
            writer.write(
                _json_response(
                    429,
                    {
                        "error": f"request shed: {decision.reason}",
                        "reason": decision.reason,
                        "retry_after_seconds": decision.retry_after,
                    },
                    headers={"Retry-After": str(retry_after)},
                )
            )
            return
        if request.deadline_ms is None and self.default_deadline_ms is not None:
            request = dataclasses.replace(
                request, deadline_ms=self.default_deadline_ms
            )
        self.metrics.admitted()
        record = self.repository.create(request.describe())
        self.batcher.submit(request, record)
        writer.write(
            _json_response(
                202, {"session_id": record.session_id, "state": record.state}
            )
        )

    async def _status(
        self, session_id: str, _query: dict, writer: asyncio.StreamWriter
    ) -> None:
        record = self.repository.get(session_id)
        if record is None:
            writer.write(_json_response(404, {"error": f"unknown session {session_id!r}"}))
            return
        writer.write(_json_response(200, record.status_view()))

    async def _result(
        self, session_id: str, query: dict, writer: asyncio.StreamWriter
    ) -> None:
        record = self.repository.get(session_id)
        if record is None:
            writer.write(_json_response(404, {"error": f"unknown session {session_id!r}"}))
            return
        wait = query.get("wait", ["0"])[-1] not in ("0", "false", "")
        if wait and not record.terminal:
            try:
                timeout = float(query.get("timeout", [self.result_wait_cap])[-1])
            except ValueError:
                writer.write(
                    _json_response(400, {"error": '"timeout" must be a number'})
                )
                return
            # The cap is server policy: a waiter can only shorten it, so no
            # client can park a connection on the loop forever.
            timeout = min(max(timeout, 0.0), self.result_wait_cap)
            subscription = self.repository.subscribe(session_id)
            if subscription is not None:
                _past, queue = subscription
                if queue is not None:
                    loop = asyncio.get_running_loop()
                    wait_deadline = loop.time() + timeout
                    timed_out = False
                    while True:
                        remaining = wait_deadline - loop.time()
                        if remaining <= 0:
                            timed_out = True
                            break
                        try:
                            event = await asyncio.wait_for(queue.get(), remaining)
                        except asyncio.TimeoutError:
                            timed_out = True
                            break
                        if event is STREAM_END:
                            break
                    if timed_out:
                        self.repository.unsubscribe(session_id, queue)
                        record = self.repository.get(session_id)
                        writer.write(
                            _json_response(
                                504,
                                {
                                    "error": (
                                        f"result wait timed out after "
                                        f"{timeout:.1f}s"
                                    ),
                                    "status": record.status_view(),
                                },
                            )
                        )
                        return
            record = self.repository.get(session_id)
        writer.write(_json_response(200, record.result_view()))

    async def _stream(
        self, session_id: str, _query: dict, writer: asyncio.StreamWriter
    ) -> None:
        subscription = self.repository.subscribe(session_id)
        if subscription is None:
            writer.write(_json_response(404, {"error": f"unknown session {session_id!r}"}))
            return
        past, queue = subscription
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
        )

        def _line(event: dict[str, Any]) -> bytes:
            return (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")

        for event in past:
            writer.write(_line(event))
        await writer.drain()
        if queue is not None:
            while True:
                event = await queue.get()
                if event is STREAM_END:
                    break
                writer.write(_line(event))
                await writer.drain()
        record = self.repository.get(session_id)
        final: dict[str, Any] = {
            "event": "done",
            "state": record.state,
            "result": record.payload,
        }
        if record.error is not None:
            final["error"] = record.error
        writer.write(_line(final))
        await writer.drain()


class ServerThread:
    """Hosts a :class:`NegotiationServer` on a background event-loop thread.

    The in-process harness used by the HTTP tests and the serving benchmark:
    ``start()`` returns once the socket is bound (with ``port=0`` the chosen
    port is published on ``server.port``); ``stop()`` tears the loop down
    gracefully, :meth:`kill` tears it down *without* the graceful batcher
    flush — simulating a crashed server for the journal-recovery tests.
    Usable as a context manager.
    """

    def __init__(self, **server_kwargs: Any) -> None:
        self._server_kwargs = server_kwargs
        self.server: Optional[NegotiationServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._graceful = True

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.stop()

    def start(self) -> NegotiationServer:
        self._thread = threading.Thread(
            target=self._run, name="serve-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("negotiation server did not start within 30s")
        if self._startup_error is not None:
            # Surface the worker's failure verbatim — a bind error must read
            # as the OSError it was, not as a generic startup timeout.
            raise self._startup_error
        return self.server

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        self.server = NegotiationServer(**self._server_kwargs)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as error:
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
            if self._graceful:
                loop.run_until_complete(self.server.stop())
        finally:
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def kill(self) -> None:
        """Stop abruptly: no batcher flush, no graceful server shutdown.

        In-flight and still-buffered sessions stay unfinished — exactly the
        state a killed process leaves behind — so a restart over the same
        state directory exercises the journal-replay path.
        """
        self._graceful = False
        self.stop()
