"""The coalescing queue: micro-batching submitted requests into kernel passes.

Requests arrive one at a time; negotiating them one at a time wastes the
vectorized runtime's batch capacity.  The :class:`CoalescingBatcher` holds
coalescable requests in a small buffer and flushes the buffer to a worker
thread as **one** :func:`~repro.serve.coalesce.execute_batch` call when either

* the buffer reaches ``max_batch`` requests (flushed immediately), or
* the oldest buffered request has waited ``max_wait`` seconds,

so a request's queueing delay is bounded by ``max_wait`` no matter how idle
the server is, while a burst of concurrent submissions rides one combined
kernel arena.  Requests that cannot coalesce (pinned ``object`` / ``sharded``
backends, full-society configurations, shard-scale populations) bypass the
buffer and run solo on a worker thread straight away.

**Deadlines.**  Each entry carries its absolute deadline (submit time +
``deadline_ms``).  At flush time, members whose budget has already run out
are failed fast with a ``deadline_exceeded`` record instead of being packed
into the arena; members that expire mid-negotiation are terminated between
lockstep rounds inside :func:`~repro.serve.coalesce.execute_batch`.

**Watchdog.**  A daemon thread tracks every in-flight worker execution.  If
a batch exceeds the watchdog budget — a wedged kernel, a crashed worker that
never reported — the watchdog fails the batch's unfinished sessions cleanly
(terminal records, streams closed, admission slots released) instead of
leaving clients blocked on ``?wait=1`` forever.  The late worker's own
completion is then a no-op: :meth:`~repro.serve.repository.SessionRepository
.finish` is first-transition-wins.

All buffer bookkeeping happens on the server's asyncio loop thread (submit
and the flush timer both run there), so the buffer itself needs no lock; the
negotiation work happens in a small :class:`~concurrent.futures
.ThreadPoolExecutor`.  The shared population cache is only ever *read* or
extended with deterministic values under the GIL — a racing double-build
writes the identical population twice, which is wasted work, never wrong
results.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.serve.coalesce import execute_batch, request_coalesces, run_solo
from repro.serve.metrics import ServeMetrics
from repro.serve.repository import SessionRecord, SessionRepository
from repro.serve.schemas import ServeRequest

#: Default flush window: long enough for a burst of concurrent submissions to
#: land in one batch, short enough to be invisible next to a negotiation.
DEFAULT_MAX_WAIT = 0.05
DEFAULT_MAX_BATCH = 8

#: Default watchdog budget (seconds) for one worker execution.  Generous — a
#: batch that takes minutes is slow, one that takes this long is wedged.
DEFAULT_WATCHDOG_TIMEOUT = 600.0


def _deadline_of(request: ServeRequest, record: SessionRecord) -> Optional[float]:
    """Absolute epoch deadline of one entry (``None`` when unbudgeted)."""
    if request.deadline_ms is None:
        return None
    return record.submitted_at + request.deadline_ms / 1000.0


class _BatchWatchdog(threading.Thread):
    """Fails sessions of worker executions that overran their budget.

    Worker threads register the session ids they are about to execute and
    clear them on completion; the watchdog sweeps the registry and, for any
    execution past its budget, moves the still-unfinished sessions to a
    terminal ``failed`` state so their streams and waiters unblock.  The
    worker thread itself cannot be killed (Python threads are cooperative) —
    the point is that *clients* observe a clean failure promptly, and a
    late completion is discarded by the repository's idempotent ``finish``.
    """

    def __init__(
        self,
        repository: SessionRepository,
        metrics: ServeMetrics,
        timeout: float,
        poll_interval: float = 0.25,
    ) -> None:
        super().__init__(name="serve-watchdog", daemon=True)
        self.repository = repository
        self.metrics = metrics
        self.timeout = timeout
        self.poll_interval = min(poll_interval, max(timeout / 4.0, 0.01))
        self._lock = threading.Lock()
        self._token_counter = itertools.count()
        #: token -> (expiry_epoch, [(session_id, submitted_at), ...])
        self._inflight: dict[int, tuple[float, list[tuple[str, float]]]] = {}
        self._stop = threading.Event()

    def register(self, entries: list[tuple[ServeRequest, SessionRecord]]) -> int:
        token = next(self._token_counter)
        expiry = time.time() + self.timeout
        sessions = [
            (record.session_id, record.submitted_at) for _request, record in entries
        ]
        with self._lock:
            self._inflight[token] = (expiry, sessions)
        return token

    def clear(self, token: int) -> None:
        with self._lock:
            self._inflight.pop(token, None)

    def stop(self) -> None:
        self._stop.set()

    def sweep(self, now: Optional[float] = None) -> int:
        """Fail every overdue execution's unfinished sessions; returns count."""
        now = time.time() if now is None else now
        with self._lock:
            overdue = [
                (token, sessions)
                for token, (expiry, sessions) in self._inflight.items()
                if now > expiry
            ]
            for token, _sessions in overdue:
                self._inflight.pop(token, None)
        failed = 0
        for _token, sessions in overdue:
            for session_id, submitted_at in sessions:
                finished = self.repository.finish(
                    session_id,
                    None,
                    error=(
                        f"watchdog: worker batch exceeded its "
                        f"{self.timeout:.1f}s budget (stuck or crashed)"
                    ),
                )
                if finished is not None:
                    failed += 1
                    self.metrics.request_finished(
                        time.time() - submitted_at, failed=True
                    )
        if failed:
            self.metrics.watchdog_failure(failed)
        return failed

    def run(self) -> None:  # pragma: no cover - exercised via sweep() in tests
        while not self._stop.wait(self.poll_interval):
            self.sweep()


class CoalescingBatcher:
    """Groups compatible requests into combined kernel passes."""

    def __init__(
        self,
        repository: SessionRepository,
        metrics: ServeMetrics,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait: float = DEFAULT_MAX_WAIT,
        workers: Optional[int] = None,
        population_cache: Optional[dict] = None,
        watchdog_timeout: Optional[float] = DEFAULT_WATCHDOG_TIMEOUT,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        if watchdog_timeout is not None and watchdog_timeout <= 0:
            raise ValueError("watchdog_timeout must be positive (or None to disable)")
        self.repository = repository
        self.metrics = metrics
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.population_cache = {} if population_cache is None else population_cache
        self._buffer: list[tuple[ServeRequest, SessionRecord]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._executor = ThreadPoolExecutor(
            max_workers=workers if workers is not None else min(4, os.cpu_count() or 1),
            thread_name_prefix="serve-worker",
        )
        self.watchdog: Optional[_BatchWatchdog] = None
        if watchdog_timeout is not None:
            self.watchdog = _BatchWatchdog(repository, metrics, watchdog_timeout)
            self.watchdog.start()

    # -- loop-thread side --------------------------------------------------------

    def submit(self, request: ServeRequest, record: SessionRecord) -> None:
        """Enqueue one accepted request (must run on the loop thread)."""
        if not request_coalesces(request):
            self.metrics.dequeued()
            self.metrics.queue_wait(time.time() - record.submitted_at)
            self._executor.submit(self._run_solo, request, record)
            return
        self._buffer.append((request, record))
        if len(self._buffer) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = asyncio.get_running_loop().call_later(
                self.max_wait, self._on_timer
            )

    def _on_timer(self) -> None:
        self._timer = None
        if self._buffer:
            self._flush()

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        entries, self._buffer = self._buffer, []
        now = time.time()
        self.metrics.dequeued(len(entries))
        for _request, record in entries:
            self.metrics.queue_wait(now - record.submitted_at)
        self._executor.submit(self._run_batch, entries)

    async def close(self) -> None:
        """Flush any buffered requests and wait for in-flight work."""
        if self._buffer:
            self._flush()
        await asyncio.get_running_loop().run_in_executor(
            None, self._executor.shutdown, True
        )
        if self.watchdog is not None:
            self.watchdog.stop()

    # -- worker-thread side ------------------------------------------------------

    def _finish_entry(
        self,
        record: SessionRecord,
        payload: Optional[dict],
        error: Optional[str],
        expired: bool = False,
    ) -> None:
        """Terminal bookkeeping for one entry (skipped if already terminal)."""
        finished = self.repository.finish(
            record.session_id,
            payload,
            error=error,
            state="expired" if expired else None,
        )
        if finished is not None:
            self.metrics.request_finished(
                time.time() - record.submitted_at,
                failed=error is not None and not expired,
                expired=expired,
            )

    def _run_batch(self, entries: list[tuple[ServeRequest, SessionRecord]]) -> None:
        # Fail-fast: entries whose latency budget already ran out while they
        # sat in the coalescing buffer never reach the arena.
        now = time.time()
        runnable: list[tuple[ServeRequest, SessionRecord]] = []
        for request, record in entries:
            deadline = _deadline_of(request, record)
            if deadline is not None and now > deadline:
                self._finish_entry(
                    record,
                    None,
                    "deadline_exceeded: latency budget ran out before "
                    "execution started (0 negotiation rounds)",
                    expired=True,
                )
            else:
                runnable.append((request, record))
        if not runnable:
            return
        entries = runnable
        for _request, record in entries:
            self.repository.mark_running(record.session_id)

        def progress(index: int, event: dict) -> None:
            self.repository.add_event(entries[index][1].session_id, event)

        token = self.watchdog.register(entries) if self.watchdog is not None else None
        try:
            outcomes, report = execute_batch(
                [request for request, _record in entries],
                self.population_cache,
                progress,
                deadlines=[_deadline_of(request, record) for request, record in entries],
            )
        except Exception as error:  # defensive: a batch must never vanish
            message = f"{type(error).__name__}: {error}"
            for _request, record in entries:
                self._finish_entry(record, None, message)
            return
        finally:
            if token is not None:
                self.watchdog.clear(token)
        self.metrics.batch_executed(
            coalesced=report.coalesced,
            solo=report.solo,
            cycles=report.cycles,
            fused_cycles=report.fused_cycles,
        )
        for (_request, record), outcome in zip(entries, outcomes):
            self._finish_entry(
                record, outcome.payload, outcome.error, expired=outcome.expired
            )

    def _run_solo(self, request: ServeRequest, record: SessionRecord) -> None:
        self.repository.mark_running(record.session_id)

        def progress(_index: int, event: dict) -> None:
            self.repository.add_event(record.session_id, event)

        token = (
            self.watchdog.register([(request, record)])
            if self.watchdog is not None
            else None
        )
        try:
            outcome = run_solo(
                request,
                self.population_cache,
                progress,
                deadline=_deadline_of(request, record),
            )
        finally:
            if token is not None:
                self.watchdog.clear(token)
        self.metrics.solo_executed()
        self._finish_entry(
            record, outcome.payload, outcome.error, expired=outcome.expired
        )
