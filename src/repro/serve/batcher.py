"""The coalescing queue: micro-batching submitted requests into kernel passes.

Requests arrive one at a time; negotiating them one at a time wastes the
vectorized runtime's batch capacity.  The :class:`CoalescingBatcher` holds
coalescable requests in a small buffer and flushes the buffer to a worker
thread as **one** :func:`~repro.serve.coalesce.execute_batch` call when either

* the buffer reaches ``max_batch`` requests (flushed immediately), or
* the oldest buffered request has waited ``max_wait`` seconds,

so a request's queueing delay is bounded by ``max_wait`` no matter how idle
the server is, while a burst of concurrent submissions rides one combined
kernel arena.  Requests that cannot coalesce (pinned ``object`` / ``sharded``
backends, full-society configurations, shard-scale populations) bypass the
buffer and run solo on a worker thread straight away.

All buffer bookkeeping happens on the server's asyncio loop thread (submit
and the flush timer both run there), so the buffer itself needs no lock; the
negotiation work happens in a small :class:`~concurrent.futures
.ThreadPoolExecutor`.  The shared population cache is only ever *read* or
extended with deterministic values under the GIL — a racing double-build
writes the identical population twice, which is wasted work, never wrong
results.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.serve.coalesce import execute_batch, request_coalesces, run_solo
from repro.serve.metrics import ServeMetrics
from repro.serve.repository import SessionRecord, SessionRepository
from repro.serve.schemas import ServeRequest

#: Default flush window: long enough for a burst of concurrent submissions to
#: land in one batch, short enough to be invisible next to a negotiation.
DEFAULT_MAX_WAIT = 0.05
DEFAULT_MAX_BATCH = 8


class CoalescingBatcher:
    """Groups compatible requests into combined kernel passes."""

    def __init__(
        self,
        repository: SessionRepository,
        metrics: ServeMetrics,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait: float = DEFAULT_MAX_WAIT,
        workers: Optional[int] = None,
        population_cache: Optional[dict] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        self.repository = repository
        self.metrics = metrics
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.population_cache = {} if population_cache is None else population_cache
        self._buffer: list[tuple[ServeRequest, SessionRecord]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._executor = ThreadPoolExecutor(
            max_workers=workers if workers is not None else min(4, os.cpu_count() or 1),
            thread_name_prefix="serve-worker",
        )

    # -- loop-thread side --------------------------------------------------------

    def submit(self, request: ServeRequest, record: SessionRecord) -> None:
        """Enqueue one accepted request (must run on the loop thread)."""
        if not request_coalesces(request):
            self.metrics.dequeued()
            self._executor.submit(self._run_solo, request, record)
            return
        self._buffer.append((request, record))
        if len(self._buffer) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = asyncio.get_running_loop().call_later(
                self.max_wait, self._on_timer
            )

    def _on_timer(self) -> None:
        self._timer = None
        if self._buffer:
            self._flush()

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        entries, self._buffer = self._buffer, []
        self.metrics.dequeued(len(entries))
        self._executor.submit(self._run_batch, entries)

    async def close(self) -> None:
        """Flush any buffered requests and wait for in-flight work."""
        if self._buffer:
            self._flush()
        await asyncio.get_running_loop().run_in_executor(
            None, self._executor.shutdown, True
        )

    # -- worker-thread side ------------------------------------------------------

    def _run_batch(self, entries: list[tuple[ServeRequest, SessionRecord]]) -> None:
        for _request, record in entries:
            self.repository.mark_running(record.session_id)

        def progress(index: int, event: dict) -> None:
            self.repository.add_event(entries[index][1].session_id, event)

        try:
            outcomes, report = execute_batch(
                [request for request, _record in entries],
                self.population_cache,
                progress,
            )
        except Exception as error:  # defensive: a batch must never vanish
            message = f"{type(error).__name__}: {error}"
            for _request, record in entries:
                self.repository.finish(record.session_id, None, error=message)
                self.metrics.request_finished(
                    time.time() - record.submitted_at, failed=True
                )
            return
        self.metrics.batch_executed(
            coalesced=report.coalesced,
            solo=report.solo,
            cycles=report.cycles,
            fused_cycles=report.fused_cycles,
        )
        for (_request, record), outcome in zip(entries, outcomes):
            self.repository.finish(record.session_id, outcome.payload, outcome.error)
            self.metrics.request_finished(
                time.time() - record.submitted_at, failed=outcome.error is not None
            )

    def _run_solo(self, request: ServeRequest, record: SessionRecord) -> None:
        self.repository.mark_running(record.session_id)

        def progress(_index: int, event: dict) -> None:
            self.repository.add_event(record.session_id, event)

        outcome = run_solo(request, self.population_cache, progress)
        self.metrics.solo_executed()
        self.repository.finish(record.session_id, outcome.payload, outcome.error)
        self.metrics.request_finished(
            time.time() - record.submitted_at, failed=outcome.error is not None
        )
