"""Request coalescing: many negotiations, one combined kernel arena.

The serving layer's throughput trick.  A batch of compatible requests is
packed into **one** combined :class:`~repro.agents.vectorized.VectorizedPopulation`
(via :meth:`~repro.agents.vectorized.VectorizedPopulation.concatenate`) and the
member sessions are driven through their round state machines in lockstep —
each on a zero-copy row :meth:`~repro.agents.vectorized.VectorizedPopulation.slice`
of the shared arena.  When every member of a cycle announces the *same*
reward table under the same bidding policy, the cut-down kernel runs **once**
over the whole arena and each member consumes its row slice (a *fused* cycle);
otherwise each member's slice runs its own kernel call.  Either way the
arithmetic is per-row, so every member's result is bit-identical to a solo
``repro.api.run`` of the same request — the determinism contract pinned by
``tests/test_serve_coalesce.py``.

Fault injection coalesces too: each member keeps its *own*
:class:`~repro.runtime.faults.FaultInjector`, whose per-round masks are keyed
purely on ``(plan seed, stream, round)`` — order-independent, so lockstep
execution replays exactly the draws a solo run would make.

Everything here is synchronous and asyncio-free; the server's
:class:`~repro.serve.batcher.CoalescingBatcher` calls it from worker threads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.agents.vectorized import VectorizedPopulation
from repro.api.engine import _fast_path_qualifies, run as _engine_run
from repro.core.fast_session import FastSession
from repro.core.scenario import Scenario
from repro.core.session import NegotiationSession
from repro.negotiation.messages import RewardTableAnnouncement
from repro.negotiation.strategy import (
    ExpectedGainBidding,
    HighestAcceptableCutdownBidding,
)
from repro.serve.schemas import ServeRequest, result_payload

#: Progress callback: ``(request_index, event_dict)``.  Events are JSON-safe.
ProgressCallback = Callable[[int, dict[str, Any]], None]


def request_coalesces(request: ServeRequest) -> bool:
    """Whether a request is a candidate for the coalesced vectorized path.

    Mirrors the façade's routing on the *request spec* (before the scenario
    is built, so the submit handler can route cheaply): the request must not
    pin a non-vectorized backend, must not need the full agent society, and —
    for ``backend="auto"`` — must be below the shard threshold, where auto
    itself would pick the vectorized path.  The batch executor re-checks
    :func:`repro.api.engine._fast_path_qualifies` on the built scenario and
    demotes to solo on disagreement, so this predicate only has to be
    *sound for routing*, never load-bearing for correctness.
    """
    if request.backend not in ("auto", "vectorized"):
        return False
    config = request.config
    if config.needs_full_agent_society:
        return False
    if request.backend == "auto":
        households = (
            request.scenario.households
            if request.scenario.family == "synthetic"
            else 20  # the calibrated paper population
        )
        if households >= config.shard_threshold and config.resolved_shards() >= 2:
            return False  # auto would route to the sharded runtime
    return True


class _CoalescedMemberSession(FastSession):
    """A FastSession whose reward-table kernel can be fed by the coordinator.

    When the lockstep coordinator has already evaluated the cut-down kernel
    over the combined arena (a fused cycle), it deposits this member's row
    slice in ``_injected_candidates``; the next :meth:`_cutdown_candidates`
    call consumes it instead of re-running the kernel on the member's slice.
    The injected rows are exactly what the slice kernel would compute (the
    kernels are per-row), so injection is a pure de-duplication.
    """

    _injected_candidates = None

    def _cutdown_candidates(self, announcement):
        injected = self._injected_candidates
        if injected is not None:
            self._injected_candidates = None
            return injected
        return super()._cutdown_candidates(announcement)


@dataclass
class _Member:
    index: int
    request: ServeRequest
    session: _CoalescedMemberSession
    row_start: int = 0
    row_stop: int = 0
    #: Absolute epoch deadline (``time.time`` scale) or ``None``.
    deadline: Optional[float] = None


@dataclass
class BatchReport:
    """Execution accounting of one :func:`execute_batch` call."""

    #: Requests that ran coalesced on the shared arena (batch occupancy).
    coalesced: int = 0
    #: Requests demoted to a solo engine run (built scenario did not qualify).
    solo: int = 0
    #: Lockstep negotiation cycles driven over the arena.
    cycles: int = 0
    #: Cycles whose cut-down kernel ran once over the whole arena.
    fused_cycles: int = 0
    #: Total arena rows (sum of member population sizes).
    arena_rows: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "coalesced": self.coalesced,
            "solo": self.solo,
            "cycles": self.cycles,
            "fused_cycles": self.fused_cycles,
            "arena_rows": self.arena_rows,
        }


@dataclass
class BatchOutcome:
    """Per-request outcome: a result payload or an error message.

    ``expired`` marks a member terminated because its ``deadline_ms`` budget
    ran out (the error message carries the partial progress); the session
    record lands in the ``expired`` terminal state rather than ``failed``.
    """

    payload: Optional[dict[str, Any]] = None
    error: Optional[str] = None
    expired: bool = False
    events: list = field(default_factory=list)


def _expire(outcome: BatchOutcome, rounds_completed: int) -> None:
    """Terminate one member's outcome with a partial-progress deadline error."""
    outcome.expired = True
    outcome.error = (
        f"deadline_exceeded: latency budget ran out after "
        f"{rounds_completed} negotiation round(s)"
    )


def _emit(
    progress: Optional[ProgressCallback],
    outcome: BatchOutcome,
    index: int,
    event: dict[str, Any],
) -> None:
    outcome.events.append(event)
    if progress is not None:
        progress(index, event)


def _fuse_key(member: _Member):
    """The fusion-compatibility key of a member's pending announcement.

    Two members fuse when they run the same batched bidding policy over the
    *same* reward table (same entries, same round).  ``None`` marks a member
    whose cycle cannot fuse (non-reward-table method, scalar policy
    fallback).
    """
    announcement = member.session.pending_announcement
    if not isinstance(announcement, RewardTableAnnouncement):
        return None
    policy_type = type(member.session.scenario.method.bidding_policy)
    if policy_type not in (HighestAcceptableCutdownBidding, ExpectedGainBidding):
        return None
    return (
        policy_type.__name__,
        announcement.round_number,
        tuple(sorted(announcement.table.entries.items())),
    )


def run_solo(
    request: ServeRequest,
    population_cache: Optional[dict] = None,
    progress: Optional[ProgressCallback] = None,
    index: int = 0,
    deadline: Optional[float] = None,
) -> BatchOutcome:
    """Run one request outside the coalescer, on the backend it pinned.

    The object path streams per-round progress straight off the message
    bus's thread-safe :meth:`~repro.runtime.messaging.MessageBus
    .counters_snapshot` (evaluated between simulation rounds); the other solo
    backends report progress only at completion.  A request whose absolute
    ``deadline`` has already passed fails fast with a ``deadline_exceeded``
    outcome instead of starting the negotiation (solo runs are
    run-to-completion once started; the batch watchdog covers the stuck
    case).
    """
    outcome = BatchOutcome()
    if deadline is not None and time.time() > deadline:
        _expire(outcome, 0)
        return outcome
    try:
        scenario = request.scenario.build_scenario(population_cache)
        config = request.config
        if request.backend == "object" or (
            request.backend == "auto" and config.needs_full_agent_society
        ):
            session = NegotiationSession(scenario, **config.session_kwargs())
            simulation = session.build()
            utility = session.utility_agent

            def _observe() -> bool:
                total, _counts = simulation.bus.counters_snapshot()
                _emit(progress, outcome, index, {
                    "event": "round",
                    "round": len(utility.record.rounds),
                    "messages_sent": total,
                })
                return utility.finished

            report = simulation.run(stop_when=_observe)
            result = session._collect_result(report.rounds_executed)
            result.metadata["backend"] = "object"
        else:
            result = _engine_run(scenario, backend=request.backend, config=config)
        outcome.payload = result_payload(result)
    except Exception as error:  # surfaced as the request's failure state
        outcome.error = f"{type(error).__name__}: {error}"
    return outcome


def execute_batch(
    requests: list[ServeRequest],
    population_cache: Optional[dict] = None,
    progress: Optional[ProgressCallback] = None,
    deadlines: Optional[Sequence[Optional[float]]] = None,
) -> tuple[list[BatchOutcome], BatchReport]:
    """Run a batch of compatible requests as one coalesced kernel pass.

    Builds every member's scenario, concatenates the vectorized populations
    into a shared arena, installs a zero-copy row slice into each member's
    session and drives all sessions through their round state machines in
    lockstep.  Members whose built scenario turns out not to qualify for the
    fast path — or whose populations cannot share an arena (requirement-grid
    mismatch) — are demoted to :func:`run_solo` rather than rejected.

    ``deadlines`` (absolute ``time.time`` epochs, one per request, ``None``
    for no budget) propagates each member's latency budget into the lockstep
    drive: a member whose deadline has already passed never starts (fail-fast
    ``deadline_exceeded``), and one that runs out mid-negotiation is
    terminated between rounds with its partial progress recorded while the
    rest of the batch keeps negotiating — one slow member never stalls its
    batch-mates.  Terminating a member does not perturb the others: every
    kernel is per-row, so the survivors' arithmetic is unchanged.

    Returns one :class:`BatchOutcome` per request (same order) plus the
    :class:`BatchReport` accounting used by the ``/metrics`` endpoint and the
    serving benchmark.
    """
    report = BatchReport()
    outcomes = [BatchOutcome() for _ in requests]
    deadline_list: list[Optional[float]] = (
        list(deadlines) if deadlines is not None else [None] * len(requests)
    )
    members: list[_Member] = []
    solo_indices: list[int] = []
    for index, request in enumerate(requests):
        deadline = deadline_list[index]
        if deadline is not None and time.time() > deadline:
            _expire(outcomes[index], 0)
            continue
        try:
            scenario = request.scenario.build_scenario(population_cache)
            qualifies, _reason = _fast_path_qualifies(scenario, request.config)
            if not (request_coalesces(request) and qualifies):
                solo_indices.append(index)
                continue
            session = _CoalescedMemberSession(
                scenario, **request.config.fast_session_kwargs()
            )
            members.append(
                _Member(
                    index=index, request=request, session=session, deadline=deadline
                )
            )
        except Exception as error:
            outcomes[index].error = f"{type(error).__name__}: {error}"

    # -- arena assembly ---------------------------------------------------------
    if members:
        parts = [
            VectorizedPopulation.from_population(member.session.scenario.population)
            for member in members
        ]
        try:
            arena = VectorizedPopulation.concatenate(parts) if len(parts) > 1 else None
        except ValueError:
            # Requirement grids differ across members: no shared arena, each
            # member runs on its privately packed population (still lockstep,
            # still bit-identical — just no fused kernel cycles).
            arena = None
        offset = 0
        for member, part in zip(members, parts):
            rows = len(part)
            member.row_start, member.row_stop = offset, offset + rows
            member.session._install_population(
                arena.slice(offset, offset + rows) if arena is not None else part
            )
            offset += rows
        report.arena_rows = offset
        report.coalesced = len(members)

        # -- lockstep drive -----------------------------------------------------
        active: list[_Member] = []
        for member in members:
            try:
                member.session.start()
            except Exception as error:
                outcomes[member.index].error = f"{type(error).__name__}: {error}"
                continue
            if member.session.phase == "done":
                # Initial overuse already acceptable: done before any round.
                result = member.session.result
                result.metadata["backend"] = "vectorized"
                outcomes[member.index].payload = result_payload(result)
            else:
                active.append(member)
        while active:
            exchanging = [m for m in active if m.session.phase == "exchange"]
            if arena is not None and len(exchanging) > 1:
                keys = {_fuse_key(member) for member in exchanging}
                if len(keys) == 1 and None not in keys:
                    # Fused cycle: one kernel call over the whole arena, each
                    # member consumes its row slice.
                    announcement = exchanging[0].session.pending_announcement
                    policy_type = type(
                        exchanging[0].session.scenario.method.bidding_policy
                    )
                    if policy_type is HighestAcceptableCutdownBidding:
                        fused = arena.highest_acceptable_cutdowns(announcement.table)
                    else:
                        fused = arena.expected_gain_cutdowns(announcement.table)
                    for member in exchanging:
                        member.session._injected_candidates = fused[
                            member.row_start : member.row_stop
                        ]
                    report.fused_cycles += 1
            still_active: list[_Member] = []
            for member in active:
                if member.deadline is not None and time.time() > member.deadline:
                    # Budget ran out between rounds: terminate this member
                    # with partial progress; its batch-mates keep going.
                    _expire(
                        outcomes[member.index], member.session.rounds_completed()
                    )
                    continue
                try:
                    if member.session.phase == "exchange":
                        member.session.step_exchange()
                    if member.session.phase == "advance":
                        member.session.step_advance()
                except Exception as error:
                    outcomes[member.index].error = f"{type(error).__name__}: {error}"
                    continue
                session = member.session
                if session.phase == "done":
                    outcome = outcomes[member.index]
                    result = session.result
                    result.metadata["backend"] = "vectorized"
                    outcome.payload = result_payload(result)
                else:
                    _emit(progress, outcomes[member.index], member.index, {
                        "event": "round",
                        "round": session.rounds_completed(),
                        "messages_sent": session.message_count(),
                    })
                    still_active.append(member)
            active = still_active
            report.cycles += 1

    # -- solo stragglers --------------------------------------------------------
    for index in solo_indices:
        outcomes[index] = run_solo(
            requests[index],
            population_cache,
            progress=progress,
            index=index,
            deadline=deadline_list[index],
        )
        report.solo += 1
    return outcomes, report
