"""Tariffs: the lower / normal / higher price structure of the paper.

Both the offer method and the request-for-bids method (Sections 3.2.1 and
3.2.2) rely on three price levels known to the Customer Agents:

* the **lower price** paid for electricity within the agreed allowance
  (``x_max`` percent, or the bid ``y_min``),
* the **normal price** paid by customers who do not participate, and
* the **higher price** paid for electricity consumed beyond the allowance.

:class:`Tariff` captures those levels; :class:`TariffSchedule` assigns a
tariff to the peak interval and the normal price elsewhere, and prices a
household's consumption under a deal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.grid.load_profile import LoadProfile
from repro.runtime.clock import TimeInterval


@dataclass(frozen=True)
class Tariff:
    """The three price levels of the paper's pricing scheme (per kWh)."""

    lower_price: float
    normal_price: float
    higher_price: float

    def __post_init__(self) -> None:
        if self.lower_price < 0 or self.normal_price < 0 or self.higher_price < 0:
            raise ValueError("prices must be non-negative")
        if not self.lower_price <= self.normal_price <= self.higher_price:
            raise ValueError(
                "tariff must satisfy lower_price <= normal_price <= higher_price, got "
                f"{self.lower_price}, {self.normal_price}, {self.higher_price}"
            )

    @property
    def discount(self) -> float:
        """Absolute saving per kWh when paying the lower instead of normal price."""
        return self.normal_price - self.lower_price

    @property
    def penalty(self) -> float:
        """Absolute surcharge per kWh when paying the higher instead of normal price."""
        return self.higher_price - self.normal_price

    @classmethod
    def standard(cls) -> "Tariff":
        """A representative domestic tariff (currency units per kWh)."""
        return cls(lower_price=0.20, normal_price=0.30, higher_price=0.55)


@dataclass(frozen=True)
class TariffSchedule:
    """Pricing of one day given a peak interval and a tariff for that interval."""

    tariff: Tariff
    peak_interval: Optional[TimeInterval] = None

    def cost_without_deal(self, profile: LoadProfile) -> float:
        """Electricity bill at the normal price for the whole day."""
        return profile.total_energy() * self.tariff.normal_price

    def cost_with_offer_deal(
        self, profile: LoadProfile, allowance_kwh: float
    ) -> float:
        """Bill under an offer/bids-style deal in the peak interval.

        Energy within the allowance during the peak interval is billed at the
        lower price, energy above it at the higher price, and energy outside
        the interval at the normal price.  With no peak interval the whole
        day is billed normally.
        """
        if allowance_kwh < 0:
            raise ValueError("allowance must be non-negative")
        if self.peak_interval is None:
            return self.cost_without_deal(profile)
        peak_energy = profile.energy_in(self.peak_interval)
        off_peak_energy = profile.total_energy() - peak_energy
        within = min(peak_energy, allowance_kwh)
        above = max(0.0, peak_energy - allowance_kwh)
        return (
            off_peak_energy * self.tariff.normal_price
            + within * self.tariff.lower_price
            + above * self.tariff.higher_price
        )

    def offer_deal_gain(
        self, profile: LoadProfile, allowance_kwh: float
    ) -> float:
        """Customer gain from accepting an offer deal versus paying normally.

        Positive means the deal is financially attractive for this profile.
        """
        return self.cost_without_deal(profile) - self.cost_with_offer_deal(
            profile, allowance_kwh
        )
