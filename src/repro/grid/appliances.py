"""Appliance-level load models.

The paper notes that domestic consumers "all have devices that consume
electricity to various degrees" and that a customer's flexibility is
"partially defined by the type of equipment they use within their homes".
Resource Consumer Agents (Section 5.2) report how much electricity can be
saved in a given interval; that figure ultimately comes from which appliances
can be deferred, throttled or switched off.

Each :class:`Appliance` contributes a daily usage pattern (relative intensity
per hour, scaled to its rated power and typical daily energy) and declares a
*flexibility*: the fraction of its consumption that can be cut during a peak
interval without unacceptable loss of comfort.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence

import numpy as np

from repro.grid.load_profile import LoadProfile
from repro.runtime.clock import TimeInterval
from repro.runtime.rng import RandomSource


class ApplianceCategory(Enum):
    """Broad appliance classes with different flexibility characteristics."""

    SPACE_HEATING = "space_heating"
    WATER_HEATING = "water_heating"
    WHITE_GOODS = "white_goods"          # washing machine, dryer, dishwasher
    COLD_APPLIANCES = "cold_appliances"  # fridge, freezer
    COOKING = "cooking"
    LIGHTING = "lighting"
    ENTERTAINMENT = "entertainment"
    OTHER = "other"


@dataclass(frozen=True)
class Appliance:
    """A single appliance type.

    Attributes
    ----------
    name:
        Unique appliance name within a library.
    category:
        Broad class, determining default flexibility.
    rated_power_kw:
        Power draw when running (kW).
    daily_energy_kwh:
        Typical energy use per day (kWh) for an average household.
    usage_pattern:
        Relative usage intensity per hour of day (24 values, arbitrary
        positive scale).  Scaled so the resulting profile integrates to
        ``daily_energy_kwh``.
    flexibility:
        Fraction of consumption in a peak interval that can be cut or
        deferred (0 = must-run, 1 = fully deferrable).
    per_person:
        Whether the appliance's energy scales with household size.
    """

    name: str
    category: ApplianceCategory
    rated_power_kw: float
    daily_energy_kwh: float
    usage_pattern: tuple[float, ...]
    flexibility: float
    per_person: bool = False

    def __post_init__(self) -> None:
        if self.rated_power_kw <= 0:
            raise ValueError(f"{self.name}: rated power must be positive")
        if self.daily_energy_kwh < 0:
            raise ValueError(f"{self.name}: daily energy must be non-negative")
        if len(self.usage_pattern) != 24:
            raise ValueError(f"{self.name}: usage pattern must have 24 hourly values")
        if any(v < 0 for v in self.usage_pattern):
            raise ValueError(f"{self.name}: usage pattern values must be non-negative")
        if sum(self.usage_pattern) <= 0:
            raise ValueError(f"{self.name}: usage pattern must not be all zero")
        if not 0.0 <= self.flexibility <= 1.0:
            raise ValueError(f"{self.name}: flexibility must be in [0, 1]")

    def slot_weights(self, slots_per_day: int = 24) -> np.ndarray:
        """Normalised per-slot energy weights at the requested resolution.

        The 24-hour usage pattern resampled to ``slots_per_day`` slots and
        normalised to sum to one; shared by :meth:`daily_profile` and the
        columnar :class:`~repro.grid.fleet.HouseholdFleet` kernels so the two
        paths can never drift.
        """
        pattern = np.asarray(self.usage_pattern, dtype=float)
        if slots_per_day % 24 == 0:
            repeat = slots_per_day // 24
            resampled = np.repeat(pattern, repeat)
        elif 24 % slots_per_day == 0:
            group = 24 // slots_per_day
            resampled = pattern.reshape(slots_per_day, group).mean(axis=1)
        else:
            raise ValueError(
                f"slots_per_day ({slots_per_day}) must be a multiple or divisor of 24"
            )
        return resampled / resampled.sum() if resampled.sum() > 0 else resampled

    def daily_profile(
        self,
        slots_per_day: int = 24,
        household_size: int = 2,
        scale: float = 1.0,
        heating_factor: float = 1.0,
    ) -> LoadProfile:
        """Daily load profile of this appliance for one household.

        Parameters
        ----------
        slots_per_day:
            Resolution of the returned profile.
        household_size:
            Number of persons; scales per-person appliances.
        scale:
            Household-specific multiplier (ownership intensity, behaviour).
        heating_factor:
            Weather-driven multiplier applied to heating categories only.
        """
        if household_size <= 0:
            raise ValueError("household size must be positive")
        if scale < 0:
            raise ValueError("scale must be non-negative")
        if heating_factor < 0:
            raise ValueError("heating factor must be non-negative")
        energy = self.daily_energy_kwh * scale
        if self.per_person:
            energy *= household_size
        if self.category in (ApplianceCategory.SPACE_HEATING, ApplianceCategory.WATER_HEATING):
            energy *= heating_factor
        slot_hours = 24.0 / slots_per_day
        weights = self.slot_weights(slots_per_day)
        energy_per_slot = weights * energy
        power = energy_per_slot / slot_hours
        # No single slot can exceed the rated power times persons using it.
        cap = self.rated_power_kw * (household_size if self.per_person else 1.0) * max(scale, 1.0)
        power = np.minimum(power, cap)
        return LoadProfile(tuple(float(p) for p in power))

    def saveable_energy(self, profile: LoadProfile, interval: TimeInterval) -> float:
        """Energy (kWh) this appliance could save in an interval, given its profile."""
        return profile.energy_in(interval) * self.flexibility


class ApplianceLibrary:
    """A catalogue of appliance types households can own."""

    def __init__(self, appliances: Optional[Sequence[Appliance]] = None) -> None:
        self._appliances: dict[str, Appliance] = {}
        for appliance in appliances or ():
            self.add(appliance)

    def add(self, appliance: Appliance) -> None:
        if appliance.name in self._appliances:
            raise ValueError(f"appliance {appliance.name!r} already in library")
        self._appliances[appliance.name] = appliance

    def get(self, name: str) -> Appliance:
        try:
            return self._appliances[name]
        except KeyError:
            raise KeyError(f"no appliance named {name!r} in library") from None

    def __contains__(self, name: str) -> bool:
        return name in self._appliances

    def __len__(self) -> int:
        return len(self._appliances)

    @property
    def names(self) -> list[str]:
        return list(self._appliances)

    def all(self) -> list[Appliance]:
        return list(self._appliances.values())

    def by_category(self, category: ApplianceCategory) -> list[Appliance]:
        return [a for a in self._appliances.values() if a.category == category]

    def sample_ownership(
        self, random: RandomSource, household_size: int
    ) -> dict[str, float]:
        """Sample which appliances a household owns and with what intensity.

        Returns a mapping appliance name -> usage scale (0 means not owned).
        Ownership probabilities rise mildly with household size.
        """
        if household_size <= 0:
            raise ValueError("household size must be positive")
        ownership: dict[str, float] = {}
        size_bonus = min(0.15 * (household_size - 1), 0.45)
        base_probability = {
            ApplianceCategory.SPACE_HEATING: 0.85,
            ApplianceCategory.WATER_HEATING: 0.9,
            ApplianceCategory.WHITE_GOODS: 0.7,
            ApplianceCategory.COLD_APPLIANCES: 1.0,
            ApplianceCategory.COOKING: 0.95,
            ApplianceCategory.LIGHTING: 1.0,
            ApplianceCategory.ENTERTAINMENT: 0.9,
            ApplianceCategory.OTHER: 0.6,
        }
        for appliance in self._appliances.values():
            probability = min(1.0, base_probability[appliance.category] + size_bonus)
            if random.boolean(probability):
                ownership[appliance.name] = max(0.2, random.normal(1.0, 0.25))
            else:
                ownership[appliance.name] = 0.0
        return ownership


def _evening_morning_pattern(morning: float, midday: float, evening: float, night: float) -> tuple[float, ...]:
    """A 24-hour pattern with the classic domestic morning/evening structure."""
    pattern = []
    for hour in range(24):
        if 6 <= hour < 9:
            pattern.append(morning)
        elif 9 <= hour < 16:
            pattern.append(midday)
        elif 16 <= hour < 22:
            pattern.append(evening)
        else:
            pattern.append(night)
    return tuple(pattern)


def standard_appliance_library() -> ApplianceLibrary:
    """The default appliance catalogue used throughout the reproduction.

    Values are representative Nordic domestic figures (electric heating is
    common in the Swedish setting the paper describes); exact numbers matter
    only in that they produce a realistic evening peak (Figure 1).
    """
    flat = tuple(1.0 for __ in range(24))
    library = ApplianceLibrary()
    library.add(Appliance(
        name="electric_space_heating",
        category=ApplianceCategory.SPACE_HEATING,
        rated_power_kw=6.0,
        daily_energy_kwh=30.0,
        usage_pattern=_evening_morning_pattern(1.3, 0.9, 1.5, 1.0),
        flexibility=0.5,
    ))
    library.add(Appliance(
        name="hot_water_boiler",
        category=ApplianceCategory.WATER_HEATING,
        rated_power_kw=3.0,
        daily_energy_kwh=4.0,
        usage_pattern=_evening_morning_pattern(1.8, 0.6, 1.6, 0.5),
        flexibility=0.7,
        per_person=True,
    ))
    library.add(Appliance(
        name="washing_machine",
        category=ApplianceCategory.WHITE_GOODS,
        rated_power_kw=2.2,
        daily_energy_kwh=1.0,
        usage_pattern=_evening_morning_pattern(0.8, 0.9, 1.8, 0.1),
        flexibility=0.9,
        per_person=True,
    ))
    library.add(Appliance(
        name="dishwasher",
        category=ApplianceCategory.WHITE_GOODS,
        rated_power_kw=1.8,
        daily_energy_kwh=0.9,
        usage_pattern=_evening_morning_pattern(0.5, 0.4, 2.0, 0.4),
        flexibility=0.9,
        per_person=True,
    ))
    library.add(Appliance(
        name="tumble_dryer",
        category=ApplianceCategory.WHITE_GOODS,
        rated_power_kw=2.5,
        daily_energy_kwh=1.2,
        usage_pattern=_evening_morning_pattern(0.6, 0.8, 1.7, 0.2),
        flexibility=0.9,
        per_person=True,
    ))
    library.add(Appliance(
        name="fridge_freezer",
        category=ApplianceCategory.COLD_APPLIANCES,
        rated_power_kw=0.15,
        daily_energy_kwh=2.0,
        usage_pattern=flat,
        flexibility=0.2,
    ))
    library.add(Appliance(
        name="electric_stove",
        category=ApplianceCategory.COOKING,
        rated_power_kw=7.0,
        daily_energy_kwh=2.5,
        usage_pattern=_evening_morning_pattern(1.0, 0.5, 2.6, 0.1),
        flexibility=0.3,
        per_person=True,
    ))
    library.add(Appliance(
        name="lighting",
        category=ApplianceCategory.LIGHTING,
        rated_power_kw=0.5,
        daily_energy_kwh=1.5,
        usage_pattern=_evening_morning_pattern(1.4, 0.4, 2.2, 0.5),
        flexibility=0.4,
    ))
    library.add(Appliance(
        name="entertainment_electronics",
        category=ApplianceCategory.ENTERTAINMENT,
        rated_power_kw=0.4,
        daily_energy_kwh=1.2,
        usage_pattern=_evening_morning_pattern(0.7, 0.5, 2.4, 0.6),
        flexibility=0.6,
        per_person=True,
    ))
    library.add(Appliance(
        name="miscellaneous",
        category=ApplianceCategory.OTHER,
        rated_power_kw=0.6,
        daily_energy_kwh=1.0,
        usage_pattern=flat,
        flexibility=0.5,
    ))
    return library
