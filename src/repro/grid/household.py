"""Households: the domestic consumers of the paper.

A household owns a set of appliances (with household-specific usage scales),
has a size (number of persons — the paper notes that "a one person household
uses less electricity than a four persons household") and a *comfort
attitude* that determines how much inconvenience it accepts per unit of
reward.  The comfort attitude feeds the customer preference model in
:mod:`repro.agents.preferences`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.grid.appliances import Appliance, ApplianceLibrary, standard_appliance_library
from repro.grid.load_profile import LoadProfile
from repro.grid.weather import WeatherSample
from repro.runtime.clock import TimeInterval
from repro.runtime.rng import RandomSource


@dataclass(frozen=True)
class HouseholdProfile:
    """Static description of a household used to build agents and workloads.

    Attributes
    ----------
    household_id:
        Unique identifier (also used as the Customer Agent name suffix).
    size:
        Number of persons.
    ownership:
        Appliance name -> usage scale (0 = not owned).
    comfort_weight:
        How strongly the household values comfort over money; higher values
        mean larger rewards are required for the same cut-down.
    flexibility_scale:
        Household-level multiplier on appliance flexibility (some households
        simply cannot shift load, e.g. electric heating in poor insulation).
    """

    household_id: str
    size: int
    ownership: dict[str, float]
    comfort_weight: float
    flexibility_scale: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("household size must be positive")
        if self.comfort_weight <= 0:
            raise ValueError("comfort weight must be positive")
        if not 0.0 < self.flexibility_scale <= 1.5:
            raise ValueError("flexibility scale must be in (0, 1.5]")


class Household:
    """A household with behaviour: it can compute its demand and flexibility."""

    def __init__(
        self,
        profile: HouseholdProfile,
        library: Optional[ApplianceLibrary] = None,
        slots_per_day: int = 24,
    ) -> None:
        self.profile = profile
        self.library = library if library is not None else standard_appliance_library()
        self.slots_per_day = slots_per_day
        unknown = [name for name in profile.ownership if name not in self.library]
        if unknown:
            raise ValueError(f"household {profile.household_id!r} owns unknown appliances {unknown}")

    @property
    def household_id(self) -> str:
        return self.profile.household_id

    @property
    def size(self) -> int:
        return self.profile.size

    def owned_appliances(self) -> list[tuple[Appliance, float]]:
        """Appliances the household owns, with their usage scale."""
        return [
            (self.library.get(name), scale)
            for name, scale in self.profile.ownership.items()
            if scale > 0
        ]

    def demand_profile(self, weather: Optional[WeatherSample] = None) -> LoadProfile:
        """Daily demand of the household under the given weather."""
        heating_factor = weather.heating_factor if weather is not None else 1.0
        owned = self.owned_appliances()
        if not owned:
            return LoadProfile.zeros(self.slots_per_day)
        profiles = [
            appliance.daily_profile(
                slots_per_day=self.slots_per_day,
                household_size=self.profile.size,
                scale=scale,
                heating_factor=heating_factor,
            )
            for appliance, scale in owned
        ]
        return LoadProfile.aggregate(profiles)

    def saveable_energy(
        self, interval: TimeInterval, weather: Optional[WeatherSample] = None
    ) -> float:
        """Energy (kWh) the household could save in the interval.

        This is the quantity the Resource Consumer Agents report upward to
        the Customer Agent ("based on information received from its Resource
        Consumer Agents on the amount of electricity that can be saved in a
        given time interval").
        """
        heating_factor = weather.heating_factor if weather is not None else 1.0
        total = 0.0
        for appliance, scale in self.owned_appliances():
            profile = appliance.daily_profile(
                slots_per_day=self.slots_per_day,
                household_size=self.profile.size,
                scale=scale,
                heating_factor=heating_factor,
            )
            total += appliance.saveable_energy(profile, interval) * self.profile.flexibility_scale
        return total

    def max_cutdown_fraction(
        self, interval: TimeInterval, weather: Optional[WeatherSample] = None
    ) -> float:
        """Largest cut-down fraction the household can physically implement."""
        demand = self.demand_profile(weather).energy_in(interval)
        if demand <= 0:
            return 0.0
        return min(1.0, self.saveable_energy(interval, weather) / demand)

    @classmethod
    def generate(
        cls,
        household_id: str,
        random: RandomSource,
        library: Optional[ApplianceLibrary] = None,
        slots_per_day: int = 24,
    ) -> "Household":
        """Sample a realistic household."""
        library = library if library is not None else standard_appliance_library()
        size = random.choice([1, 2, 3, 4, 5], weights=[0.25, 0.32, 0.18, 0.18, 0.07])
        ownership = library.sample_ownership(random, size)
        comfort_weight = max(0.3, random.lognormal(0.0, 0.35))
        flexibility_scale = min(1.2, max(0.2, random.normal(0.8, 0.2)))
        profile = HouseholdProfile(
            household_id=household_id,
            size=size,
            ownership=ownership,
            comfort_weight=comfort_weight,
            flexibility_scale=flexibility_scale,
        )
        return cls(profile, library, slots_per_day)
