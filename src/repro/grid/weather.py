"""Synthetic weather model.

The Utility Agent acquires "general information about the external world
itself, for example weather conditions" (Section 5.1.4) because cold snaps
drive heating load and hence demand peaks.  We model daily weather as a
temperature (°C) plus a qualitative condition, and translate temperature into
a *heating factor*: a multiplier on heating-related appliance energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.runtime.rng import RandomSource


class WeatherCondition(Enum):
    """Qualitative weather classification, as the external world reports it."""

    MILD = "mild"
    COLD = "cold"
    SEVERE_COLD = "severe_cold"
    WARM = "warm"


@dataclass(frozen=True)
class WeatherSample:
    """Weather for one day."""

    temperature_c: float
    condition: WeatherCondition

    @property
    def heating_factor(self) -> float:
        """Multiplier on heating energy relative to a mild reference day.

        Calibrated so a mild day (around +10 °C) has factor 1.0, a cold day
        (around -5 °C) roughly 1.5 and a severe cold snap (-20 °C) roughly 2.0.
        The relationship is linear in heating degree days below 17 °C, which
        is the standard simple model for space-heating demand.
        """
        reference_degree_days = max(0.0, 17.0 - 10.0)
        degree_days = max(0.0, 17.0 - self.temperature_c)
        if reference_degree_days == 0:
            return 1.0
        return max(0.25, degree_days / reference_degree_days)


#: Mean daily temperature per condition (°C) used by the generator.
_CONDITION_MEANS = {
    WeatherCondition.WARM: 18.0,
    WeatherCondition.MILD: 10.0,
    WeatherCondition.COLD: -5.0,
    WeatherCondition.SEVERE_COLD: -18.0,
}


class WeatherModel:
    """Generates daily weather samples, optionally forced to a condition."""

    def __init__(self, random: Optional[RandomSource] = None) -> None:
        self._random = random if random is not None else RandomSource(0, "weather")

    def sample(self, condition: Optional[WeatherCondition] = None) -> WeatherSample:
        """Draw the weather for one day.

        Parameters
        ----------
        condition:
            When given, the day is of this type (temperature still varies
            around the condition's mean); when omitted, the condition is drawn
            with winter-weighted probabilities.
        """
        if condition is None:
            condition = self._random.choice(
                [
                    WeatherCondition.WARM,
                    WeatherCondition.MILD,
                    WeatherCondition.COLD,
                    WeatherCondition.SEVERE_COLD,
                ],
                weights=[0.15, 0.45, 0.3, 0.1],
            )
        mean = _CONDITION_MEANS[condition]
        temperature = self._random.normal(mean, 2.5)
        return WeatherSample(temperature_c=temperature, condition=condition)

    def cold_snap(self) -> WeatherSample:
        """A severe-cold day — the canonical peak-inducing scenario."""
        return self.sample(WeatherCondition.SEVERE_COLD)

    def reference_day(self) -> WeatherSample:
        """A deterministic mild reference day (heating factor exactly 1.0)."""
        return WeatherSample(temperature_c=10.0, condition=WeatherCondition.MILD)
