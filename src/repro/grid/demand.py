"""Demand curves and population demand (reproduces Figure 1).

Figure 1 of the paper shows a daily electricity demand curve with a peak that
exceeds the level servable at normal production cost.  :class:`DemandModel`
builds such curves from a household population and a weather sample;
:class:`DemandCurve` carries the curve together with the normal-cost
production level so the peak/overuse structure of Figure 1 can be rendered
and measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.grid.household import Household
from repro.grid.load_profile import LoadProfile
from repro.grid.weather import WeatherSample
from repro.runtime.clock import TimeInterval, TimeSlot
from repro.runtime.rng import RandomSource


@dataclass(frozen=True)
class DemandCurve:
    """A demand profile together with the normal-production threshold.

    This is exactly the content of Figure 1: demand over time, a horizontal
    "normal production costs" level, and the region above it that requires
    "expensive production costs".
    """

    demand: LoadProfile
    normal_capacity: float

    def __post_init__(self) -> None:
        if self.normal_capacity <= 0:
            raise ValueError("normal capacity must be positive")

    @property
    def peak_demand(self) -> float:
        return self.demand.peak()

    @property
    def has_peak(self) -> bool:
        """Whether demand ever exceeds the normal-cost capacity."""
        return self.peak_demand > self.normal_capacity

    @property
    def peak_overuse(self) -> float:
        """Peak demand above normal capacity (kW); 0 when there is no peak."""
        return max(0.0, self.peak_demand - self.normal_capacity)

    @property
    def relative_overuse(self) -> float:
        """Peak overuse as a fraction of normal capacity."""
        return self.peak_overuse / self.normal_capacity

    def peak_interval(self) -> Optional[TimeInterval]:
        """The contiguous interval in which demand exceeds normal capacity."""
        return self.demand.peak_interval(self.normal_capacity)

    def expensive_energy(self) -> float:
        """Energy (kWh) that must be produced at expensive cost."""
        return self.demand.exceedance(self.normal_capacity)

    def as_rows(self) -> list[dict[str, float]]:
        """Tabular rendering: one row per slot (used by the Figure 1 bench)."""
        rows = []
        for index, value in enumerate(self.demand):
            slot = TimeSlot(index, self.demand.slots_per_day)
            rows.append(
                {
                    "slot": index,
                    "hour": slot.start_hour,
                    "demand_kw": value,
                    "normal_capacity_kw": self.normal_capacity,
                    "overuse_kw": max(0.0, value - self.normal_capacity),
                }
            )
        return rows


@dataclass
class PopulationDemand:
    """Per-household and aggregate demand of a population for one day."""

    household_profiles: dict[str, LoadProfile]
    weather: Optional[WeatherSample] = None

    def __post_init__(self) -> None:
        if not self.household_profiles:
            raise ValueError("population demand needs at least one household")

    @property
    def aggregate(self) -> LoadProfile:
        return LoadProfile.aggregate(self.household_profiles.values())

    @property
    def household_ids(self) -> list[str]:
        return list(self.household_profiles)

    def household(self, household_id: str) -> LoadProfile:
        try:
            return self.household_profiles[household_id]
        except KeyError:
            raise KeyError(f"no household {household_id!r} in population demand") from None

    def demand_in(self, interval: TimeInterval) -> dict[str, float]:
        """Average demand (kW) per household during an interval."""
        return {
            household_id: profile.average_in(interval)
            for household_id, profile in self.household_profiles.items()
        }

    def curve(self, normal_capacity: float) -> DemandCurve:
        return DemandCurve(self.aggregate, normal_capacity)


class DemandModel:
    """Builds population demand from households and weather."""

    def __init__(
        self,
        households: Sequence[Household],
        random: Optional[RandomSource] = None,
        behavioural_noise: float = 0.08,
    ) -> None:
        if not households:
            raise ValueError("demand model needs at least one household")
        if behavioural_noise < 0:
            raise ValueError("behavioural noise must be non-negative")
        self.households = list(households)
        self._random = random if random is not None else RandomSource(0, "demand")
        self.behavioural_noise = behavioural_noise

    def realise(self, weather: Optional[WeatherSample] = None) -> PopulationDemand:
        """Realise one day of demand (with per-household behavioural noise)."""
        profiles: dict[str, LoadProfile] = {}
        for household in self.households:
            base = household.demand_profile(weather)
            if self.behavioural_noise > 0:
                noise = self._random.normal_array(
                    1.0, self.behavioural_noise, base.slots_per_day
                )
                noisy = np.clip(base.as_array() * noise, 0.0, None)
                profiles[household.household_id] = LoadProfile(tuple(float(v) for v in noisy))
            else:
                profiles[household.household_id] = base
        return PopulationDemand(profiles, weather)

    def expected_aggregate(self, weather: Optional[WeatherSample] = None) -> LoadProfile:
        """Noise-free aggregate demand (the statistical expectation)."""
        return LoadProfile.aggregate(
            household.demand_profile(weather) for household in self.households
        )

    def normal_capacity_for_target(
        self, weather: Optional[WeatherSample] = None, headroom: float = 0.0,
        quantile: float = 0.75,
    ) -> float:
        """A normal-production capacity that makes the daily peak an *overuse* peak.

        The utility's normal (cheap) production capacity is set near the
        ``quantile`` of the expected daily demand distribution plus
        ``headroom``; demand above it requires expensive production, exactly
        the Figure 1 situation.
        """
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if headroom < 0:
            raise ValueError("headroom must be non-negative")
        aggregate = self.expected_aggregate(weather)
        level = float(np.quantile(aggregate.as_array(), quantile))
        return level * (1.0 + headroom)
