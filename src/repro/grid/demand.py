"""Demand curves and population demand (reproduces Figure 1).

Figure 1 of the paper shows a daily electricity demand curve with a peak that
exceeds the level servable at normal production cost.  :class:`DemandModel`
builds such curves from a household population and a weather sample;
:class:`DemandCurve` carries the curve together with the normal-cost
production level so the peak/overuse structure of Figure 1 can be rendered
and measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from repro.grid.household import Household
from repro.grid.load_profile import LoadProfile
from repro.grid.weather import WeatherSample
from repro.runtime.clock import TimeInterval, TimeSlot
from repro.runtime.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - typing only (runtime import would cycle)
    from repro.grid.fleet import Fleet


@dataclass(frozen=True)
class DemandCurve:
    """A demand profile together with the normal-production threshold.

    This is exactly the content of Figure 1: demand over time, a horizontal
    "normal production costs" level, and the region above it that requires
    "expensive production costs".
    """

    demand: LoadProfile
    normal_capacity: float

    def __post_init__(self) -> None:
        if self.normal_capacity <= 0:
            raise ValueError("normal capacity must be positive")

    @property
    def peak_demand(self) -> float:
        return self.demand.peak()

    @property
    def has_peak(self) -> bool:
        """Whether demand ever exceeds the normal-cost capacity."""
        return self.peak_demand > self.normal_capacity

    @property
    def peak_overuse(self) -> float:
        """Peak demand above normal capacity (kW); 0 when there is no peak."""
        return max(0.0, self.peak_demand - self.normal_capacity)

    @property
    def relative_overuse(self) -> float:
        """Peak overuse as a fraction of normal capacity."""
        return self.peak_overuse / self.normal_capacity

    def peak_interval(self) -> Optional[TimeInterval]:
        """The contiguous interval in which demand exceeds normal capacity."""
        return self.demand.peak_interval(self.normal_capacity)

    def expensive_energy(self) -> float:
        """Energy (kWh) that must be produced at expensive cost."""
        return self.demand.exceedance(self.normal_capacity)

    def as_rows(self) -> list[dict[str, float]]:
        """Tabular rendering: one row per slot (used by the Figure 1 bench)."""
        rows = []
        for index, value in enumerate(self.demand):
            slot = TimeSlot(index, self.demand.slots_per_day)
            rows.append(
                {
                    "slot": index,
                    "hour": slot.start_hour,
                    "demand_kw": value,
                    "normal_capacity_kw": self.normal_capacity,
                    "overuse_kw": max(0.0, value - self.normal_capacity),
                }
            )
        return rows


class PopulationDemand:
    """Per-household and aggregate demand of a population for one day.

    Holds either a mapping ``household_id -> LoadProfile`` (the historical
    object representation) or a columnar ``(num_households, slots)`` matrix
    plus the id list (what the fleet-backed :class:`DemandModel` and the
    consumption predictor exchange).  Either representation converts to the
    other lazily and bit-identically, so callers can mix freely.
    """

    def __init__(
        self,
        household_profiles: Optional[dict[str, LoadProfile]] = None,
        weather: Optional[WeatherSample] = None,
        *,
        household_ids: Optional[Sequence[str]] = None,
        matrix: Optional[np.ndarray] = None,
    ) -> None:
        if household_profiles is None and matrix is None:
            raise ValueError("population demand needs profiles or a matrix")
        if household_profiles is not None and not household_profiles:
            raise ValueError("population demand needs at least one household")
        if matrix is not None:
            if household_ids is None:
                raise ValueError("a demand matrix needs the household id list")
            if matrix.ndim != 2 or matrix.shape[0] != len(household_ids):
                raise ValueError("demand matrix rows must align with household ids")
            if matrix.shape[0] == 0:
                raise ValueError("population demand needs at least one household")
        self._profiles = dict(household_profiles) if household_profiles is not None else None
        self._ids = list(household_ids) if household_ids is not None else None
        self._matrix = matrix
        self.weather = weather

    @property
    def household_profiles(self) -> dict[str, LoadProfile]:
        if self._profiles is None:
            self._profiles = {
                household_id: LoadProfile.from_array(row)
                for household_id, row in zip(self._ids, self._matrix)
            }
        return self._profiles

    def matrix(self) -> np.ndarray:
        """``(num_households, slots)`` demand matrix, rows in id order."""
        if self._matrix is None:
            self._matrix = np.array(
                [profile.as_array() for profile in self._profiles.values()]
            )
            self._matrix.setflags(write=False)
        return self._matrix

    @property
    def aggregate(self) -> LoadProfile:
        return LoadProfile.from_array(self.matrix().sum(axis=0))

    @property
    def household_ids(self) -> list[str]:
        if self._ids is None:
            self._ids = list(self._profiles)
        return list(self._ids)

    def household(self, household_id: str) -> LoadProfile:
        try:
            return self.household_profiles[household_id]
        except KeyError:
            raise KeyError(f"no household {household_id!r} in population demand") from None

    def demand_in(self, interval: TimeInterval) -> dict[str, float]:
        """Average demand (kW) per household during an interval."""
        return {
            household_id: profile.average_in(interval)
            for household_id, profile in self.household_profiles.items()
        }

    def curve(self, normal_capacity: float) -> DemandCurve:
        return DemandCurve(self.aggregate, normal_capacity)


class DemandModel:
    """Builds population demand from households and weather."""

    def __init__(
        self,
        households: Sequence[Household],
        random: Optional[RandomSource] = None,
        behavioural_noise: float = 0.08,
        fleet: Optional["Fleet"] = None,
    ) -> None:
        if not households:
            raise ValueError("demand model needs at least one household")
        if behavioural_noise < 0:
            raise ValueError("behavioural noise must be non-negative")
        self.households = list(households)
        self._random = random if random is not None else RandomSource(0, "demand")
        self.behavioural_noise = behavioural_noise
        # Columnar fast path: pack the households into a fleet (a single
        # HouseholdFleet when homogeneous, a BucketedFleet otherwise); only
        # genuinely unpackable populations (mixed profile resolutions) keep
        # the scalar per-household path, with the reason recorded on
        # ``fallback_reason``.  Callers that already hold a fleet over the
        # same households pass it in instead of paying for a second packing.
        # Imported lazily to avoid a demand <-> fleet module cycle.
        from repro.grid.fleet import FleetIncompatibleError, pack_fleet

        #: Why realisation runs the scalar path (``None`` on the fleet path).
        self.fallback_reason: Optional[str] = None
        if fleet is not None and fleet.households == self.households:
            self._fleet: Optional["Fleet"] = fleet
        else:
            try:
                self._fleet = pack_fleet(self.households)
            except FleetIncompatibleError as exc:
                self._fleet = None
                self.fallback_reason = str(exc)

    def realise(self, weather: Optional[WeatherSample] = None) -> PopulationDemand:
        """Realise one day of demand (with per-household behavioural noise).

        The fleet-backed columnar path draws the same noise stream as the
        scalar path (numpy generators are chunking-invariant) and applies it
        with the same elementwise operations, so both paths realise
        bit-identical days.
        """
        if self._fleet is None:
            return self._realise_scalar(weather)
        base = self._fleet.demand_profiles(weather)
        if self.behavioural_noise > 0:
            noise = self._random.normal_array(
                1.0, self.behavioural_noise, base.size
            ).reshape(base.shape)
            matrix = np.clip(base * noise, 0.0, None)
        else:
            matrix = base
        return PopulationDemand(
            weather=weather, household_ids=self._fleet.household_ids, matrix=matrix
        )

    def _realise_scalar(self, weather: Optional[WeatherSample] = None) -> PopulationDemand:
        """The per-household object path (fleet-incompatible populations, tests)."""
        profiles: dict[str, LoadProfile] = {}
        for household in self.households:
            base = household.demand_profile(weather)
            if self.behavioural_noise > 0:
                noise = self._random.normal_array(
                    1.0, self.behavioural_noise, base.slots_per_day
                )
                noisy = np.clip(base.as_array() * noise, 0.0, None)
                profiles[household.household_id] = LoadProfile(tuple(float(v) for v in noisy))
            else:
                profiles[household.household_id] = base
        return PopulationDemand(profiles, weather)

    def expected_aggregate(self, weather: Optional[WeatherSample] = None) -> LoadProfile:
        """Noise-free aggregate demand (the statistical expectation)."""
        if self._fleet is not None:
            return self._fleet.aggregate_demand(weather)
        return LoadProfile.aggregate(
            household.demand_profile(weather) for household in self.households
        )

    def normal_capacity_for_target(
        self, weather: Optional[WeatherSample] = None, headroom: float = 0.0,
        quantile: float = 0.75,
    ) -> float:
        """A normal-production capacity that makes the daily peak an *overuse* peak.

        The utility's normal (cheap) production capacity is set near the
        ``quantile`` of the expected daily demand distribution plus
        ``headroom``; demand above it requires expensive production, exactly
        the Figure 1 situation.
        """
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if headroom < 0:
            raise ValueError("headroom must be non-negative")
        aggregate = self.expected_aggregate(weather)
        level = float(np.quantile(aggregate.as_array(), quantile))
        return level * (1.0 + headroom)
