"""Production capacity and cost model.

The Utility Agent acquires "information from Producer Agent (e.g.,
availability of electricity and cost)" (Section 5.1).  We model production as
a merit-order stack of :class:`ProductionSegment` blocks: cheap base
capacity first (the "normal production costs" region of Figure 1), then
increasingly expensive peak capacity.  The utility's economic motive for load
management — avoiding the expensive segments — falls directly out of this
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.grid.load_profile import LoadProfile


@dataclass(frozen=True)
class ProductionSegment:
    """A block of production capacity with a marginal cost."""

    name: str
    capacity_kw: float
    marginal_cost: float  # currency units per kWh

    def __post_init__(self) -> None:
        if self.capacity_kw <= 0:
            raise ValueError(f"segment {self.name!r}: capacity must be positive")
        if self.marginal_cost < 0:
            raise ValueError(f"segment {self.name!r}: marginal cost must be non-negative")


class ProductionModel:
    """A merit-order production stack."""

    def __init__(self, segments: Sequence[ProductionSegment]) -> None:
        if not segments:
            raise ValueError("production model needs at least one segment")
        ordered = sorted(segments, key=lambda s: s.marginal_cost)
        if list(ordered) != list(segments):
            raise ValueError("segments must be given in non-decreasing marginal-cost order")
        self.segments = list(segments)

    # -- constructors --------------------------------------------------------

    @classmethod
    def two_tier(
        cls,
        normal_capacity_kw: float,
        peak_capacity_kw: float,
        normal_cost: float = 0.25,
        peak_cost: float = 0.75,
    ) -> "ProductionModel":
        """The Figure 1 structure: normal-cost base plus expensive peak capacity."""
        if peak_cost < normal_cost:
            raise ValueError("peak cost must be at least the normal cost")
        return cls(
            [
                ProductionSegment("normal", normal_capacity_kw, normal_cost),
                ProductionSegment("peak", peak_capacity_kw, peak_cost),
            ]
        )

    # -- properties ------------------------------------------------------------

    @property
    def total_capacity_kw(self) -> float:
        return sum(segment.capacity_kw for segment in self.segments)

    @property
    def normal_capacity_kw(self) -> float:
        """Capacity of the cheapest segment (the 'normal production' level)."""
        return self.segments[0].capacity_kw

    @property
    def normal_cost(self) -> float:
        return self.segments[0].marginal_cost

    @property
    def peak_cost(self) -> float:
        return self.segments[-1].marginal_cost

    # -- dispatch ----------------------------------------------------------------

    def dispatch(self, demand_kw: float) -> list[tuple[ProductionSegment, float]]:
        """Allocate an instantaneous demand across segments in merit order.

        Returns ``(segment, dispatched_kw)`` pairs.  Demand beyond total
        capacity is *unserved* and simply not dispatched (the caller can
        detect it by summing).
        """
        if demand_kw < 0:
            raise ValueError("demand must be non-negative")
        remaining = demand_kw
        allocation = []
        for segment in self.segments:
            if remaining <= 0:
                break
            used = min(segment.capacity_kw, remaining)
            allocation.append((segment, used))
            remaining -= used
        return allocation

    def unserved(self, demand_kw: float) -> float:
        """Demand (kW) beyond total capacity."""
        return max(0.0, demand_kw - self.total_capacity_kw)

    def marginal_cost_at(self, demand_kw: float) -> float:
        """Marginal cost of serving the last kW of a given demand level."""
        if demand_kw < 0:
            raise ValueError("demand must be non-negative")
        if demand_kw == 0:
            return self.segments[0].marginal_cost
        cumulative = 0.0
        for segment in self.segments:
            cumulative += segment.capacity_kw
            if demand_kw <= cumulative:
                return segment.marginal_cost
        return self.segments[-1].marginal_cost

    def cost_of_slot(self, demand_kw: float, slot_hours: float) -> float:
        """Production cost of serving a demand level for ``slot_hours`` hours."""
        if slot_hours < 0:
            raise ValueError("slot duration must be non-negative")
        return sum(
            used * slot_hours * segment.marginal_cost
            for segment, used in self.dispatch(demand_kw)
        )

    def cost_of_profile(self, profile: LoadProfile) -> float:
        """Total production cost of serving a daily load profile."""
        return sum(
            self.cost_of_slot(value, profile.slot_hours) for value in profile
        )

    def expensive_cost_of_profile(self, profile: LoadProfile) -> float:
        """Cost incurred above the cheapest segment (the avoidable peak cost)."""
        total = self.cost_of_profile(profile)
        cheap_only = sum(
            min(value, self.normal_capacity_kw) * profile.slot_hours * self.normal_cost
            for value in profile
        )
        return total - cheap_only

    def savings_between(self, before: LoadProfile, after: LoadProfile) -> float:
        """Production-cost savings achieved by replacing ``before`` with ``after``."""
        return self.cost_of_profile(before) - self.cost_of_profile(after)
