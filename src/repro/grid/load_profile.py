"""Load profiles: electricity use (kW) per time slot over one day."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.runtime.clock import TimeInterval, TimeSlot


@dataclass(frozen=True)
class LoadProfile:
    """Electricity load per slot of a day, in kW (average power per slot).

    A frozen value type: arithmetic returns new profiles.  Energy for a slot
    is ``power * slot_hours`` kWh.
    """

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a load profile needs at least one slot")
        if any(v < 0 for v in self.values):
            raise ValueError("load values must be non-negative")

    # -- constructors -------------------------------------------------------

    @classmethod
    def zeros(cls, slots_per_day: int = 24) -> "LoadProfile":
        return cls(tuple(0.0 for __ in range(slots_per_day)))

    @classmethod
    def constant(cls, power_kw: float, slots_per_day: int = 24) -> "LoadProfile":
        if power_kw < 0:
            raise ValueError("power must be non-negative")
        return cls(tuple(float(power_kw) for __ in range(slots_per_day)))

    @classmethod
    def from_sequence(cls, values: Sequence[float]) -> "LoadProfile":
        return cls(tuple(float(v) for v in values))

    @classmethod
    def from_array(cls, values: np.ndarray) -> "LoadProfile":
        """A profile from a 1-D numpy array (float64 round-trips exactly)."""
        return cls(tuple(float(v) for v in values))

    # -- basic properties ----------------------------------------------------

    @property
    def slots_per_day(self) -> int:
        return len(self.values)

    @property
    def slot_hours(self) -> float:
        return 24.0 / len(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    def __getitem__(self, index: int) -> float:
        return self.values[index]

    def at(self, slot: TimeSlot) -> float:
        """Load during one slot (kW)."""
        if slot.slots_per_day != self.slots_per_day:
            raise ValueError(
                f"slot resolution {slot.slots_per_day} does not match "
                f"profile resolution {self.slots_per_day}"
            )
        return self.values[slot.index]

    def as_array(self) -> np.ndarray:
        return np.asarray(self.values, dtype=float)

    # -- aggregate measures -----------------------------------------------------

    def peak(self) -> float:
        """Maximum load over the day (kW)."""
        return max(self.values)

    def peak_slot(self) -> TimeSlot:
        """Slot at which the load is maximal (earliest if tied)."""
        index = int(np.argmax(self.as_array()))
        return TimeSlot(index, self.slots_per_day)

    def total_energy(self) -> float:
        """Total energy over the day (kWh)."""
        return float(sum(self.values) * self.slot_hours)

    def average(self) -> float:
        """Mean load over the day (kW)."""
        return float(np.mean(self.as_array()))

    def load_factor(self) -> float:
        """Average load divided by peak load (1.0 means perfectly flat)."""
        peak = self.peak()
        if peak == 0:
            return 1.0
        return self.average() / peak

    def energy_in(self, interval: TimeInterval) -> float:
        """Energy used during an interval (kWh)."""
        return float(
            sum(self.at(slot) for slot in interval.slots()) * self.slot_hours
        )

    def average_in(self, interval: TimeInterval) -> float:
        """Average load during an interval (kW)."""
        loads = [self.at(slot) for slot in interval.slots()]
        return float(np.mean(loads))

    def exceedance(self, threshold: float) -> float:
        """Total energy above a threshold power (kWh); 0 when never exceeded."""
        excess = np.clip(self.as_array() - threshold, 0.0, None)
        return float(excess.sum() * self.slot_hours)

    def slots_above(self, threshold: float) -> list[TimeSlot]:
        """Slots in which the load exceeds a threshold."""
        return [
            TimeSlot(i, self.slots_per_day)
            for i, v in enumerate(self.values)
            if v > threshold
        ]

    def peak_interval(self, threshold: float) -> TimeInterval | None:
        """The contiguous interval around the peak where load exceeds ``threshold``.

        Returns ``None`` when the profile never exceeds the threshold.
        """
        if self.peak() <= threshold:
            return None
        peak_index = self.peak_slot().index
        start = peak_index
        while start > 0 and self.values[start - 1] > threshold:
            start -= 1
        end = peak_index
        while end < self.slots_per_day - 1 and self.values[end + 1] > threshold:
            end += 1
        return TimeInterval(
            TimeSlot(start, self.slots_per_day), TimeSlot(end, self.slots_per_day)
        )

    # -- arithmetic -----------------------------------------------------------

    def _check_compatible(self, other: "LoadProfile") -> None:
        if self.slots_per_day != other.slots_per_day:
            raise ValueError(
                f"cannot combine profiles with {self.slots_per_day} and "
                f"{other.slots_per_day} slots per day"
            )

    def __add__(self, other: "LoadProfile") -> "LoadProfile":
        self._check_compatible(other)
        return LoadProfile(tuple(a + b for a, b in zip(self.values, other.values)))

    def __sub__(self, other: "LoadProfile") -> "LoadProfile":
        self._check_compatible(other)
        return LoadProfile(tuple(max(0.0, a - b) for a, b in zip(self.values, other.values)))

    def scaled(self, factor: float) -> "LoadProfile":
        """Profile multiplied by a non-negative factor."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return LoadProfile(tuple(v * factor for v in self.values))

    def clipped(self, ceiling: float) -> "LoadProfile":
        """Profile with every slot clipped to at most ``ceiling`` kW."""
        if ceiling < 0:
            raise ValueError("ceiling must be non-negative")
        return LoadProfile(tuple(min(v, ceiling) for v in self.values))

    def with_cutdown_in(self, interval: TimeInterval, cutdown: float) -> "LoadProfile":
        """Profile with load reduced by a fraction inside an interval.

        This is how an awarded cut-down is applied to a household's profile.
        """
        if not 0.0 <= cutdown <= 1.0:
            raise ValueError(f"cutdown must be in [0, 1], got {cutdown}")
        new_values = list(self.values)
        for slot in interval.slots():
            new_values[slot.index] = self.values[slot.index] * (1.0 - cutdown)
        return LoadProfile(tuple(new_values))

    @staticmethod
    def aggregate(profiles: Iterable["LoadProfile"]) -> "LoadProfile":
        """Sum of many profiles (they must share a resolution)."""
        profiles = list(profiles)
        if not profiles:
            raise ValueError("cannot aggregate zero profiles")
        total = profiles[0]
        for profile in profiles[1:]:
            total = total + profile
        return total


def matrix_average_in(matrix: np.ndarray, interval: TimeInterval) -> np.ndarray:
    """Per-row average of a ``(rows, slots)`` matrix over an interval's slots.

    The columnar counterpart of :meth:`LoadProfile.average_in`, shared by the
    fleet kernels and the columnar predictor so the two can never drift: the
    contiguous-copy-then-``np.mean`` form reduces each row over the same
    number of contiguous elements as the scalar ``np.mean`` over a slot list,
    which makes the result bit-identical per row.
    """
    indices = [slot.index for slot in interval.slots()]
    columns = np.ascontiguousarray(matrix[:, indices])
    return np.mean(columns, axis=1)
