"""Electricity-grid / demand-side substrate.

The paper's domain (Section 2) is load management for domestic consumers: a
utility serves a population of households whose aggregate demand exhibits a
peak that is expensive to supply (Figure 1).  This package provides the
synthetic equivalent of that domain:

* :mod:`repro.grid.appliances` — appliance-level load models (heating, hot
  water, white goods, lighting...), including whether a device's use can be
  deferred or cut down.
* :mod:`repro.grid.household` — households composed of appliances, with a
  household size and comfort preferences.
* :mod:`repro.grid.weather` — a simple synthetic weather model driving
  heating demand (the Utility Agent "acquires information from the External
  World, e.g. weather conditions").
* :mod:`repro.grid.demand` — daily demand profiles per household and
  aggregated over a population (reproduces Figure 1).
* :mod:`repro.grid.load_profile` — the :class:`LoadProfile` value type shared
  by the demand, prediction and production modules.
* :mod:`repro.grid.prediction` — statistical consumption prediction used by
  the Utility Agent ("predictions are calculated on the basis of statistical
  models").
* :mod:`repro.grid.production` — production capacity and cost (normal vs.
  expensive peak production).
* :mod:`repro.grid.pricing` — tariff structures (lower / normal / higher
  prices) used by the offer and request-for-bids methods.
"""

from repro.grid.appliances import (
    Appliance,
    ApplianceCategory,
    ApplianceLibrary,
    standard_appliance_library,
)
from repro.grid.demand import DemandCurve, DemandModel, PopulationDemand
from repro.grid.fleet import FleetIncompatibleError, HouseholdFleet
from repro.grid.household import Household, HouseholdProfile
from repro.grid.load_profile import LoadProfile
from repro.grid.prediction import ConsumptionPredictor, FleetPrediction, PredictionModel
from repro.grid.pricing import Tariff, TariffSchedule
from repro.grid.production import ProductionModel, ProductionSegment
from repro.grid.weather import WeatherCondition, WeatherModel, WeatherSample

__all__ = [
    "Appliance",
    "ApplianceCategory",
    "ApplianceLibrary",
    "ConsumptionPredictor",
    "DemandCurve",
    "DemandModel",
    "FleetIncompatibleError",
    "FleetPrediction",
    "Household",
    "HouseholdFleet",
    "HouseholdProfile",
    "LoadProfile",
    "PopulationDemand",
    "PredictionModel",
    "ProductionModel",
    "ProductionSegment",
    "Tariff",
    "TariffSchedule",
    "WeatherCondition",
    "WeatherModel",
    "WeatherSample",
    "standard_appliance_library",
]
