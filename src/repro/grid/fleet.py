"""Columnar household fleets: struct-of-arrays kernels over a population.

The planning layer of the Utility Agent (Section 5.1's observe → predict →
negotiate loop) repeatedly needs the same three quantities for *every*
household of a population: its daily demand profile under tomorrow's weather,
the energy it has at stake in the predicted peak interval and the largest
cut-down its appliances could physically deliver (what its Resource Consumer
Agents would report).  The object model computes each of these one household
at a time, rebuilding ~10 appliance profiles per call — fine for the
prototype's handful of customers, ruinous for 10k-household day-ahead
planning.

:class:`HouseholdFleet` is the columnar view: household attributes (appliance
ownership scales, sizes, comfort weights, flexibility scales) and appliance
parameters (slot weights, daily energies, rated-power caps, flexibilities)
are packed into numpy arrays once, and the per-household quantities come out
of batched kernels — ``demand_profiles``, ``energy_in``, ``saveable_energy``
and ``max_cutdown_fractions``.

**Exactness contract.**  Every kernel mirrors the scalar code in
:class:`~repro.grid.household.Household` and
:class:`~repro.grid.appliances.Appliance` operation-for-operation (same float
multiplication order, same sequential accumulation over appliances and time
slots, powers precomputed with Python ``**``), so the fleet path is
*bit-identical* to the per-household object path — the same guarantee
:class:`~repro.agents.vectorized.VectorizedPopulation` gives the negotiation
kernels.  ``tests/test_grid_fleet.py`` enforces it per household.

A fleet requires a *homogeneous* population: all households share one
appliance library, one profile resolution, and list their owned appliances in
library order (which :meth:`Household.generate` guarantees).  Heterogeneous
populations raise :class:`FleetIncompatibleError`; callers fall back to the
scalar per-household path.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.grid.appliances import ApplianceCategory
from repro.grid.household import Household
from repro.grid.load_profile import LoadProfile, matrix_average_in
from repro.grid.weather import WeatherSample
from repro.runtime.clock import TimeInterval

#: Heating-driven appliance categories (their energy scales with the weather's
#: heating factor, mirroring :meth:`Appliance.daily_profile`).
_HEATING_CATEGORIES = (ApplianceCategory.SPACE_HEATING, ApplianceCategory.WATER_HEATING)

#: Per-fleet cache bound on the weather-keyed demand matrices.  A campaign
#: touches one heating factor per day; a handful of slots covers the planner's
#: predict/plan/account calls for that day without unbounded growth.  Only the
#: (N, S) demand matrix is retained per factor — the per-appliance power
#: matrices, an order of magnitude more memory (A·N·S), are streamed and
#: never cached, keeping a 100k-household fleet's footprint to O(N·S).
_WEATHER_CACHE_SIZE = 4


class FleetIncompatibleError(ValueError):
    """The households cannot be packed into one columnar fleet."""


def _interval_slot_indices(interval: TimeInterval, slots_per_day: int) -> list[int]:
    if interval.slots_per_day != slots_per_day:
        raise ValueError(
            f"interval resolution {interval.slots_per_day} does not match "
            f"fleet resolution {slots_per_day}"
        )
    return [slot.index for slot in interval.slots()]


class HouseholdFleet:
    """All planning-relevant attributes of a household population, as arrays.

    Attributes
    ----------
    households:
        The packed :class:`~repro.grid.household.Household` objects, in fleet
        order; every array below is aligned with this order.
    household_ids:
        Household identifiers, in fleet order.
    sizes / comfort_weights / flexibility_scales:
        Per-household attribute vectors (``(N,)``).
    ownership:
        ``(N, A)`` matrix of appliance usage scales (0 = not owned), with
        appliance columns in library order.
    """

    def __init__(self, households: Sequence[Household]) -> None:
        if not households:
            raise FleetIncompatibleError("a fleet needs at least one household")
        self.households = list(households)
        first = self.households[0]
        self.slots_per_day = first.slots_per_day
        self.library = first.library
        appliances = self.library.all()
        names = [appliance.name for appliance in appliances]
        index_of = {name: column for column, name in enumerate(names)}
        ownership_rows = []
        for household in self.households:
            if household.slots_per_day != self.slots_per_day:
                raise FleetIncompatibleError(
                    "all fleet households must share one profile resolution"
                )
            if household.library is not self.library and (
                household.library.names != names
                or [household.library.get(n) for n in names] != appliances
            ):
                raise FleetIncompatibleError(
                    "all fleet households must share one appliance library"
                )
            # The scalar path aggregates appliances in ownership-dict order;
            # the fleet aggregates in library order.  Bit-identity therefore
            # requires the owned appliances to appear in library order.
            owned_columns = [
                index_of[name]
                for name, scale in household.profile.ownership.items()
                if scale > 0
            ]
            if owned_columns != sorted(owned_columns):
                raise FleetIncompatibleError(
                    f"household {household.household_id!r} lists owned "
                    f"appliances out of library order"
                )
            ownership_rows.append(
                [household.profile.ownership.get(name, 0.0) for name in names]
            )
        self.household_ids = [h.household_id for h in self.households]
        self.sizes = np.array([float(h.size) for h in self.households])
        self.comfort_weights = np.array(
            [h.profile.comfort_weight for h in self.households]
        )
        self.flexibility_scales = np.array(
            [h.profile.flexibility_scale for h in self.households]
        )
        self.ownership = np.array(ownership_rows, dtype=float)
        # Per-appliance static columns (library order).
        self._appliances = appliances
        self._daily_energies = np.array([a.daily_energy_kwh for a in appliances])
        self._rated_powers = np.array([a.rated_power_kw for a in appliances])
        self._flexibilities = np.array([a.flexibility for a in appliances])
        self._per_person = [a.per_person for a in appliances]
        self._heating = [a.category in _HEATING_CATEGORIES for a in appliances]
        self._slot_weights = np.stack(
            [a.slot_weights(self.slots_per_day) for a in appliances]
        )
        # Rated-power caps are weather-independent: rated * (size | 1) * max(scale, 1).
        self._caps = np.stack(
            [
                (
                    self._rated_powers[column] * self.sizes
                    if self._per_person[column]
                    else np.full(len(self.households), self._rated_powers[column])
                )
                * np.maximum(self.ownership[:, column], 1.0)
                for column in range(len(appliances))
            ]
        )  # (A, N)
        #: Weather-keyed demand-matrix cache (heating factor -> (N, S) array),
        #: FIFO-bounded.
        self._demand_cache: dict[float, np.ndarray] = {}

    # -- basic views -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.households)

    @property
    def num_appliances(self) -> int:
        return len(self._appliances)

    @staticmethod
    def heating_factor(weather: Optional[WeatherSample]) -> float:
        return weather.heating_factor if weather is not None else 1.0

    # -- kernels -----------------------------------------------------------------

    def _appliance_powers(self, heating_factor: float):
        """Per-appliance ``(N, S)`` power matrices, mirroring ``daily_profile``.

        A generator: callers accumulate one appliance at a time, so only one
        ``(N, S)`` intermediate is ever alive — the full ``A`` matrices at
        once would cost hundreds of MB for a 100k-household fleet, which is
        why they are streamed rather than cached.
        """
        slot_hours = 24.0 / self.slots_per_day
        for column in range(self.num_appliances):
            # Same multiplication order as Appliance.daily_profile: base
            # energy x ownership scale, then x household size (per-person
            # appliances), then x heating factor (heating categories).
            energy = self._daily_energies[column] * self.ownership[:, column]
            if self._per_person[column]:
                energy = energy * self.sizes
            if self._heating[column]:
                energy = energy * heating_factor
            per_slot = self._slot_weights[column][None, :] * energy[:, None]
            power = per_slot / slot_hours
            yield column, np.minimum(power, self._caps[column][:, None])

    def demand_profiles(self, weather: Optional[WeatherSample] = None) -> np.ndarray:
        """``(N, S)`` matrix of per-household daily demand (kW per slot).

        Row ``i`` is bit-identical to
        ``households[i].demand_profile(weather).as_array()``.
        """
        factor = self.heating_factor(weather)
        cached = self._demand_cache.get(factor)
        if cached is not None:
            return cached
        total = np.zeros((len(self.households), self.slots_per_day))
        for __, power in self._appliance_powers(factor):
            # Sequential accumulation in library order matches the scalar
            # LoadProfile.aggregate over owned appliances (adding an unowned
            # appliance's exact 0.0 contribution preserves every bit).
            total = total + power
        total.setflags(write=False)
        if len(self._demand_cache) >= _WEATHER_CACHE_SIZE:
            self._demand_cache.pop(next(iter(self._demand_cache)))
        self._demand_cache[factor] = total
        return total

    def aggregate_demand(self, weather: Optional[WeatherSample] = None) -> LoadProfile:
        """Population aggregate profile; equals summing the per-household profiles."""
        return LoadProfile.from_array(self.demand_profiles(weather).sum(axis=0))

    @staticmethod
    def _interval_energy(matrix: np.ndarray, indices: Sequence[int], slot_hours: float) -> np.ndarray:
        """Per-row interval energy with the scalar path's summation order."""
        total = np.zeros(matrix.shape[0])
        for index in indices:
            total = total + matrix[:, index]
        return total * slot_hours

    def energy_in(
        self, interval: TimeInterval, weather: Optional[WeatherSample] = None
    ) -> np.ndarray:
        """Per-household energy (kWh) used during the interval (``(N,)``)."""
        indices = _interval_slot_indices(interval, self.slots_per_day)
        slot_hours = 24.0 / self.slots_per_day
        return self._interval_energy(self.demand_profiles(weather), indices, slot_hours)

    def average_in(
        self, interval: TimeInterval, weather: Optional[WeatherSample] = None
    ) -> np.ndarray:
        """Per-household average demand (kW) during the interval (``(N,)``)."""
        _interval_slot_indices(interval, self.slots_per_day)  # resolution check
        return matrix_average_in(self.demand_profiles(weather), interval)

    def saveable_energy(
        self, interval: TimeInterval, weather: Optional[WeatherSample] = None
    ) -> np.ndarray:
        """Per-household saveable energy (kWh) in the interval (``(N,)``).

        What the Resource Consumer Agents report upward: each appliance's
        interval energy times its flexibility, scaled by the household's
        flexibility scale, accumulated in library order like the scalar
        :meth:`Household.saveable_energy`.
        """
        indices = _interval_slot_indices(interval, self.slots_per_day)
        slot_hours = 24.0 / self.slots_per_day
        factor = self.heating_factor(weather)
        total = np.zeros(len(self.households))
        for column, power in self._appliance_powers(factor):
            energy = self._interval_energy(power, indices, slot_hours)
            total = total + (energy * self._flexibilities[column]) * self.flexibility_scales
        return total

    def max_cutdown_fractions(
        self,
        interval: TimeInterval,
        weather: Optional[WeatherSample] = None,
        demand_energies: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Largest physically implementable cut-down fraction per household.

        ``demand_energies`` lets callers that already hold
        ``energy_in(interval, weather)`` skip recomputing it.
        """
        demand = (
            demand_energies
            if demand_energies is not None
            else self.energy_in(interval, weather)
        )
        saveable = self.saveable_energy(interval, weather)
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.minimum(1.0, saveable / demand)
        return np.where(demand > 0, fractions, 0.0)
