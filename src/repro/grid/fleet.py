"""Columnar household fleets: struct-of-arrays kernels over a population.

The planning layer of the Utility Agent (Section 5.1's observe → predict →
negotiate loop) repeatedly needs the same three quantities for *every*
household of a population: its daily demand profile under tomorrow's weather,
the energy it has at stake in the predicted peak interval and the largest
cut-down its appliances could physically deliver (what its Resource Consumer
Agents would report).  The object model computes each of these one household
at a time, rebuilding ~10 appliance profiles per call — fine for the
prototype's handful of customers, ruinous for 10k-household day-ahead
planning.

:class:`HouseholdFleet` is the columnar view: household attributes (appliance
ownership scales, sizes, comfort weights, flexibility scales) and appliance
parameters (slot weights, daily energies, rated-power caps, flexibilities)
are packed into numpy arrays once, and the per-household quantities come out
of batched kernels — ``demand_profiles``, ``energy_in``, ``saveable_energy``
and ``max_cutdown_fractions``.

**Exactness contract.**  Every kernel mirrors the scalar code in
:class:`~repro.grid.household.Household` and
:class:`~repro.grid.appliances.Appliance` operation-for-operation (same float
multiplication order, same sequential accumulation over appliances and time
slots, powers precomputed with Python ``**``), so the fleet path is
*bit-identical* to the per-household object path — the same guarantee
:class:`~repro.agents.vectorized.VectorizedPopulation` gives the negotiation
kernels.  ``tests/test_grid_fleet.py`` enforces it per household.

A plain :class:`HouseholdFleet` requires a *homogeneous* population: all
households share one appliance library, one profile resolution, and list
their owned appliances in a common column order (which
:meth:`Household.generate` guarantees).  :class:`BucketedFleet` lifts that
restriction: it groups households by appliance signature (library identity by
value, ownership-dict column order), builds one :class:`HouseholdFleet` per
bucket with a per-bucket column permutation, and scatters kernel results back
into population order — still bit-identical per household.  Callers should
use :func:`pack_fleet`, which picks the single-fleet layout when it applies
and the bucketed one otherwise; only genuinely unpackable populations (mixed
profile resolutions) raise :class:`FleetIncompatibleError`, and callers fall
back to the scalar per-household path.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.grid.appliances import ApplianceCategory
from repro.grid.household import Household
from repro.grid.load_profile import LoadProfile, matrix_average_in
from repro.grid.weather import WeatherSample
from repro.runtime.clock import TimeInterval

#: Heating-driven appliance categories (their energy scales with the weather's
#: heating factor, mirroring :meth:`Appliance.daily_profile`).
_HEATING_CATEGORIES = (ApplianceCategory.SPACE_HEATING, ApplianceCategory.WATER_HEATING)

#: Per-fleet cache bound on the weather-keyed demand matrices.  A campaign
#: touches one heating factor per day; a handful of slots covers the planner's
#: predict/plan/account calls for that day without unbounded growth.  Only the
#: (N, S) demand matrix is retained per factor — the per-appliance power
#: matrices, an order of magnitude more memory (A·N·S), are streamed and
#: never cached, keeping a 100k-household fleet's footprint to O(N·S).
_WEATHER_CACHE_SIZE = 4


class FleetIncompatibleError(ValueError):
    """The households cannot be packed into one columnar fleet."""


def _interval_slot_indices(interval: TimeInterval, slots_per_day: int) -> list[int]:
    if interval.slots_per_day != slots_per_day:
        raise ValueError(
            f"interval resolution {interval.slots_per_day} does not match "
            f"fleet resolution {slots_per_day}"
        )
    return [slot.index for slot in interval.slots()]


class HouseholdFleet:
    """All planning-relevant attributes of a household population, as arrays.

    Attributes
    ----------
    households:
        The packed :class:`~repro.grid.household.Household` objects, in fleet
        order; every array below is aligned with this order.
    household_ids:
        Household identifiers, in fleet order.
    sizes / comfort_weights / flexibility_scales:
        Per-household attribute vectors (``(N,)``).
    ownership:
        ``(N, A)`` matrix of appliance usage scales (0 = not owned), with
        appliance columns in library order.
    """

    def __init__(
        self,
        households: Sequence[Household],
        appliance_order: Optional[Sequence[str]] = None,
    ) -> None:
        if not households:
            # Plain ValueError, deliberately *not* FleetIncompatibleError:
            # callers treat the latter as a fall-back-to-scalar signal, and an
            # empty population is misuse that must fail loudly at the boundary.
            raise ValueError("a fleet needs at least one household")
        self.households = list(households)
        first = self.households[0]
        self.slots_per_day = first.slots_per_day
        self.library = first.library
        library_names = list(self.library.names)
        library_appliances = self.library.all()
        if appliance_order is None:
            names = library_names
        else:
            names = list(appliance_order)
            unknown = [name for name in names if name not in self.library]
            if unknown:
                raise FleetIncompatibleError(
                    f"appliance order names unknown appliances: {unknown!r}"
                )
            if len(set(names)) != len(names):
                raise FleetIncompatibleError("appliance order repeats a column")
        appliances = [self.library.get(name) for name in names]
        index_of = {name: column for column, name in enumerate(names)}
        ownership_rows = []
        for household in self.households:
            if household.slots_per_day != self.slots_per_day:
                raise FleetIncompatibleError(
                    "all fleet households must share one profile resolution"
                )
            if household.library is not self.library and (
                household.library.names != library_names
                or [household.library.get(n) for n in library_names]
                != library_appliances
            ):
                raise FleetIncompatibleError(
                    "all fleet households must share one appliance library"
                )
            # The scalar path aggregates appliances in ownership-dict order;
            # the fleet aggregates in column order.  Bit-identity therefore
            # requires the owned appliances to appear in column order (the
            # library's by default, or the caller's ``appliance_order``
            # permutation — how BucketedFleet packs households whose
            # ownership dicts are not library-ordered).
            try:
                owned_columns = [
                    index_of[name]
                    for name, scale in household.profile.ownership.items()
                    if scale > 0
                ]
            except KeyError as exc:
                raise FleetIncompatibleError(
                    f"household {household.household_id!r} owns an appliance "
                    f"outside the fleet's column order: {exc.args[0]!r}"
                ) from None
            if owned_columns != sorted(owned_columns):
                raise FleetIncompatibleError(
                    f"household {household.household_id!r} lists owned "
                    f"appliances out of column order"
                )
            ownership_rows.append(
                [household.profile.ownership.get(name, 0.0) for name in names]
            )
        self.household_ids = [h.household_id for h in self.households]
        self.sizes = np.array([float(h.size) for h in self.households])
        self.comfort_weights = np.array(
            [h.profile.comfort_weight for h in self.households]
        )
        self.flexibility_scales = np.array(
            [h.profile.flexibility_scale for h in self.households]
        )
        self.ownership = np.array(ownership_rows, dtype=float).reshape(
            len(self.households), len(appliances)
        )
        # Per-appliance static columns (one column per ``names`` entry).
        self._appliances = appliances
        self._daily_energies = np.array([a.daily_energy_kwh for a in appliances])
        self._rated_powers = np.array([a.rated_power_kw for a in appliances])
        self._flexibilities = np.array([a.flexibility for a in appliances])
        self._per_person = [a.per_person for a in appliances]
        self._heating = [a.category in _HEATING_CATEGORIES for a in appliances]
        if appliances:
            self._slot_weights = np.stack(
                [a.slot_weights(self.slots_per_day) for a in appliances]
            )
            # Rated-power caps are weather-independent:
            # rated * (size | 1) * max(scale, 1).
            self._caps = np.stack(
                [
                    (
                        self._rated_powers[column] * self.sizes
                        if self._per_person[column]
                        else np.full(len(self.households), self._rated_powers[column])
                    )
                    * np.maximum(self.ownership[:, column], 1.0)
                    for column in range(len(appliances))
                ]
            )  # (A, N)
        else:  # a bucket of appliance-less households still packs cleanly
            self._slot_weights = np.zeros((0, self.slots_per_day))
            self._caps = np.zeros((0, len(self.households)))
        #: Weather-keyed demand-matrix cache (heating factor -> (N, S) array),
        #: FIFO-bounded.
        self._demand_cache: dict[float, np.ndarray] = {}

    # -- basic views -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.households)

    @property
    def num_appliances(self) -> int:
        return len(self._appliances)

    @staticmethod
    def heating_factor(weather: Optional[WeatherSample]) -> float:
        return weather.heating_factor if weather is not None else 1.0

    # -- kernels -----------------------------------------------------------------

    def _appliance_powers(self, heating_factor: float):
        """Per-appliance ``(N, S)`` power matrices, mirroring ``daily_profile``.

        A generator: callers accumulate one appliance at a time, so only one
        ``(N, S)`` intermediate is ever alive — the full ``A`` matrices at
        once would cost hundreds of MB for a 100k-household fleet, which is
        why they are streamed rather than cached.
        """
        slot_hours = 24.0 / self.slots_per_day
        for column in range(self.num_appliances):
            # Same multiplication order as Appliance.daily_profile: base
            # energy x ownership scale, then x household size (per-person
            # appliances), then x heating factor (heating categories).
            energy = self._daily_energies[column] * self.ownership[:, column]
            if self._per_person[column]:
                energy = energy * self.sizes
            if self._heating[column]:
                energy = energy * heating_factor
            per_slot = self._slot_weights[column][None, :] * energy[:, None]
            power = per_slot / slot_hours
            yield column, np.minimum(power, self._caps[column][:, None])

    def demand_profiles(self, weather: Optional[WeatherSample] = None) -> np.ndarray:
        """``(N, S)`` matrix of per-household daily demand (kW per slot).

        Row ``i`` is bit-identical to
        ``households[i].demand_profile(weather).as_array()``.
        """
        factor = self.heating_factor(weather)
        cached = self._demand_cache.get(factor)
        if cached is not None:
            return cached
        total = np.zeros((len(self.households), self.slots_per_day))
        for __, power in self._appliance_powers(factor):
            # Sequential accumulation in library order matches the scalar
            # LoadProfile.aggregate over owned appliances (adding an unowned
            # appliance's exact 0.0 contribution preserves every bit).
            total = total + power
        total.setflags(write=False)
        if len(self._demand_cache) >= _WEATHER_CACHE_SIZE:
            self._demand_cache.pop(next(iter(self._demand_cache)))
        self._demand_cache[factor] = total
        return total

    def aggregate_demand(self, weather: Optional[WeatherSample] = None) -> LoadProfile:
        """Population aggregate profile; equals summing the per-household profiles."""
        return LoadProfile.from_array(self.demand_profiles(weather).sum(axis=0))

    @staticmethod
    def _interval_energy(matrix: np.ndarray, indices: Sequence[int], slot_hours: float) -> np.ndarray:
        """Per-row interval energy with the scalar path's summation order."""
        total = np.zeros(matrix.shape[0])
        for index in indices:
            total = total + matrix[:, index]
        return total * slot_hours

    def energy_in(
        self, interval: TimeInterval, weather: Optional[WeatherSample] = None
    ) -> np.ndarray:
        """Per-household energy (kWh) used during the interval (``(N,)``)."""
        indices = _interval_slot_indices(interval, self.slots_per_day)
        slot_hours = 24.0 / self.slots_per_day
        return self._interval_energy(self.demand_profiles(weather), indices, slot_hours)

    def average_in(
        self, interval: TimeInterval, weather: Optional[WeatherSample] = None
    ) -> np.ndarray:
        """Per-household average demand (kW) during the interval (``(N,)``)."""
        _interval_slot_indices(interval, self.slots_per_day)  # resolution check
        return matrix_average_in(self.demand_profiles(weather), interval)

    def saveable_energy(
        self, interval: TimeInterval, weather: Optional[WeatherSample] = None
    ) -> np.ndarray:
        """Per-household saveable energy (kWh) in the interval (``(N,)``).

        What the Resource Consumer Agents report upward: each appliance's
        interval energy times its flexibility, scaled by the household's
        flexibility scale, accumulated in library order like the scalar
        :meth:`Household.saveable_energy`.
        """
        indices = _interval_slot_indices(interval, self.slots_per_day)
        slot_hours = 24.0 / self.slots_per_day
        factor = self.heating_factor(weather)
        total = np.zeros(len(self.households))
        for column, power in self._appliance_powers(factor):
            energy = self._interval_energy(power, indices, slot_hours)
            total = total + (energy * self._flexibilities[column]) * self.flexibility_scales
        return total

    def max_cutdown_fractions(
        self,
        interval: TimeInterval,
        weather: Optional[WeatherSample] = None,
        demand_energies: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Largest physically implementable cut-down fraction per household.

        ``demand_energies`` lets callers that already hold
        ``energy_in(interval, weather)`` skip recomputing it.
        """
        demand = (
            demand_energies
            if demand_energies is not None
            else self.energy_in(interval, weather)
        )
        saveable = self.saveable_energy(interval, weather)
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.minimum(1.0, saveable / demand)
        return np.where(demand > 0, fractions, 0.0)


class BucketedFleet:
    """A heterogeneous population packed as per-signature sub-fleets.

    Households are grouped by appliance signature — their library (compared
    by value, like :class:`HouseholdFleet`) and the column order of their
    ownership dict — and each bucket becomes one :class:`HouseholdFleet`
    whose columns follow that bucket's ownership-dict order.  Because every
    household's *owned* appliances are a subsequence of its ownership-dict
    keys, the per-bucket column permutation always satisfies the fleet's
    order check, and each kernel row keeps the scalar path's accumulation
    order: bucketed results are bit-identical to the per-household loop.

    Kernel results are scattered back into population order, so the class
    exposes the same surface as :class:`HouseholdFleet` (``demand_profiles``,
    ``energy_in``, ``average_in``, ``saveable_energy``,
    ``max_cutdown_fractions``, ``aggregate_demand`` and the per-household
    attribute vectors) and is a drop-in replacement for planning callers.

    Only mixed profile *resolutions* remain unpackable and raise
    :class:`FleetIncompatibleError`.
    """

    def __init__(self, households: Sequence[Household]) -> None:
        if not households:
            raise ValueError("a fleet needs at least one household")
        self.households = list(households)
        self.slots_per_day = self.households[0].slots_per_day
        self._libraries: list = []
        token_by_id: dict[int, int] = {}
        groups: dict[tuple, list[int]] = {}
        for row, household in enumerate(self.households):
            if household.slots_per_day != self.slots_per_day:
                raise FleetIncompatibleError(
                    "all fleet households must share one profile resolution"
                )
            token = token_by_id.get(id(household.library))
            if token is None:
                token = self._library_token(household.library)
                token_by_id[id(household.library)] = token
            key = (token, tuple(household.profile.ownership.keys()))
            groups.setdefault(key, []).append(row)
        #: ``(population-row indices, sub-fleet)`` pairs, one per signature,
        #: in first-appearance order.
        self.buckets: list[tuple[np.ndarray, HouseholdFleet]] = [
            (
                np.array(rows, dtype=np.intp),
                HouseholdFleet(
                    [self.households[row] for row in rows], appliance_order=key[1]
                ),
            )
            for key, rows in groups.items()
        ]
        self.household_ids = [h.household_id for h in self.households]
        self.sizes = np.array([float(h.size) for h in self.households])
        self.comfort_weights = np.array(
            [h.profile.comfort_weight for h in self.households]
        )
        self.flexibility_scales = np.array(
            [h.profile.flexibility_scale for h in self.households]
        )
        self._demand_cache: dict[float, np.ndarray] = {}

    def _library_token(self, library) -> int:
        for token, known in enumerate(self._libraries):
            if library is known or (
                library.names == known.names
                and [library.get(name) for name in known.names] == known.all()
            ):
                return token
        self._libraries.append(library)
        return len(self._libraries) - 1

    # -- basic views -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.households)

    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    heating_factor = staticmethod(HouseholdFleet.heating_factor)

    # -- kernels -----------------------------------------------------------------

    def _scatter(self, kernel_name: str, *args, **kwargs) -> np.ndarray:
        """Run a per-bucket ``(n,)`` kernel and scatter rows into place."""
        out = np.zeros(len(self.households))
        for rows, bucket in self.buckets:
            out[rows] = getattr(bucket, kernel_name)(*args, **kwargs)
        return out

    def demand_profiles(self, weather: Optional[WeatherSample] = None) -> np.ndarray:
        """``(N, S)`` demand matrix in population order (rows bit-identical
        to each household's scalar ``demand_profile``)."""
        factor = self.heating_factor(weather)
        cached = self._demand_cache.get(factor)
        if cached is not None:
            return cached
        total = np.zeros((len(self.households), self.slots_per_day))
        for rows, bucket in self.buckets:
            total[rows] = bucket.demand_profiles(weather)
        total.setflags(write=False)
        if len(self._demand_cache) >= _WEATHER_CACHE_SIZE:
            self._demand_cache.pop(next(iter(self._demand_cache)))
        self._demand_cache[factor] = total
        return total

    def aggregate_demand(self, weather: Optional[WeatherSample] = None) -> LoadProfile:
        return LoadProfile.from_array(self.demand_profiles(weather).sum(axis=0))

    def energy_in(
        self, interval: TimeInterval, weather: Optional[WeatherSample] = None
    ) -> np.ndarray:
        return self._scatter("energy_in", interval, weather)

    def average_in(
        self, interval: TimeInterval, weather: Optional[WeatherSample] = None
    ) -> np.ndarray:
        return self._scatter("average_in", interval, weather)

    def saveable_energy(
        self, interval: TimeInterval, weather: Optional[WeatherSample] = None
    ) -> np.ndarray:
        return self._scatter("saveable_energy", interval, weather)

    def max_cutdown_fractions(
        self,
        interval: TimeInterval,
        weather: Optional[WeatherSample] = None,
        demand_energies: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        out = np.zeros(len(self.households))
        for rows, bucket in self.buckets:
            sliced = demand_energies[rows] if demand_energies is not None else None
            out[rows] = bucket.max_cutdown_fractions(
                interval, weather, demand_energies=sliced
            )
        return out


#: Either columnar layout — what :func:`pack_fleet` returns.  The two share
#: the full planning-kernel surface and are interchangeable for callers.
Fleet = Union[HouseholdFleet, BucketedFleet]


def pack_fleet(households: Sequence[Household]) -> Fleet:
    """Pack ``households`` into the best columnar layout that fits.

    The single-matrix :class:`HouseholdFleet` when the population is
    appliance-homogeneous (no bucketing overhead), otherwise a
    :class:`BucketedFleet`.  Raises :class:`FleetIncompatibleError` only for
    genuinely unpackable populations (mixed profile resolutions) and a plain
    :class:`ValueError` for empty input.
    """
    try:
        return HouseholdFleet(households)
    except FleetIncompatibleError:
        return BucketedFleet(households)
