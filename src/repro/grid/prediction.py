"""Consumption prediction: the Utility Agent's statistical model.

"To predict the balance between consumption and production, available
information is analysed and predictions are calculated on the basis of
statistical models" (Section 5.1.2).  The :class:`ConsumptionPredictor`
implements this: it is trained on historical daily demand realisations
(optionally weather-tagged) and predicts the aggregate and per-household
demand for an upcoming day, with a configurable statistical model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

import numpy as np

from repro.grid.demand import PopulationDemand
from repro.grid.load_profile import LoadProfile
from repro.grid.weather import WeatherSample
from repro.runtime.clock import TimeInterval


class PredictionModel(Enum):
    """Statistical model used for prediction."""

    #: Plain mean of historical profiles.
    MEAN = "mean"
    #: Exponentially weighted mean (recent days matter more).
    EXPONENTIAL_SMOOTHING = "exponential_smoothing"
    #: Mean of historical days re-scaled by the heating factor of the
    #: forecast weather relative to the historical average heating factor.
    WEATHER_ADJUSTED = "weather_adjusted"


@dataclass(frozen=True)
class PredictionResult:
    """A prediction of one day's demand."""

    aggregate: LoadProfile
    per_household: dict[str, LoadProfile]
    model: PredictionModel

    def household_prediction_in(self, interval: TimeInterval) -> dict[str, float]:
        """Predicted average demand (kW) per household during an interval."""
        return {
            household_id: profile.average_in(interval)
            for household_id, profile in self.per_household.items()
        }

    def aggregate_in(self, interval: TimeInterval) -> float:
        """Predicted average aggregate demand (kW) during an interval."""
        return self.aggregate.average_in(interval)


class ConsumptionPredictor:
    """Predicts per-household and aggregate demand from history."""

    def __init__(
        self,
        model: PredictionModel = PredictionModel.MEAN,
        smoothing_factor: float = 0.4,
    ) -> None:
        if not 0.0 < smoothing_factor <= 1.0:
            raise ValueError("smoothing factor must be in (0, 1]")
        self.model = model
        self.smoothing_factor = smoothing_factor
        self._history: list[PopulationDemand] = []

    # -- training -----------------------------------------------------------

    def observe(self, demand: PopulationDemand) -> None:
        """Record one realised day of demand."""
        if self._history and set(demand.household_ids) != set(self._history[0].household_ids):
            raise ValueError("all observed days must cover the same households")
        self._history.append(demand)

    def observe_many(self, demands: Sequence[PopulationDemand]) -> None:
        for demand in demands:
            self.observe(demand)

    @property
    def history_length(self) -> int:
        return len(self._history)

    # -- prediction -----------------------------------------------------------

    def predict(self, forecast_weather: Optional[WeatherSample] = None) -> PredictionResult:
        """Predict the next day's demand.

        Raises
        ------
        ValueError
            If no history has been observed yet.
        """
        if not self._history:
            raise ValueError("cannot predict without any observed history")
        household_ids = self._history[0].household_ids
        weights = self._weights()
        per_household: dict[str, LoadProfile] = {}
        for household_id in household_ids:
            stacked = np.stack(
                [day.household(household_id).as_array() for day in self._history]
            )
            mean_profile = np.average(stacked, axis=0, weights=weights)
            per_household[household_id] = LoadProfile(tuple(float(v) for v in mean_profile))
        adjustment = self._weather_adjustment(forecast_weather)
        if adjustment != 1.0:
            per_household = {
                household_id: profile.scaled(adjustment)
                for household_id, profile in per_household.items()
            }
        aggregate = LoadProfile.aggregate(per_household.values())
        return PredictionResult(aggregate, per_household, self.model)

    def _weights(self) -> np.ndarray:
        n = len(self._history)
        if self.model is PredictionModel.EXPONENTIAL_SMOOTHING and n > 1:
            alpha = self.smoothing_factor
            weights = np.array([(1 - alpha) ** (n - 1 - i) for i in range(n)])
            return weights / weights.sum()
        return np.full(n, 1.0 / n)

    def _weather_adjustment(self, forecast: Optional[WeatherSample]) -> float:
        if self.model is not PredictionModel.WEATHER_ADJUSTED or forecast is None:
            return 1.0
        historical_factors = [
            day.weather.heating_factor for day in self._history if day.weather is not None
        ]
        if not historical_factors:
            return 1.0
        mean_factor = float(np.mean(historical_factors))
        if mean_factor <= 0:
            return 1.0
        # Heating is roughly half of winter domestic load; scale that share.
        heating_share = 0.5
        ratio = forecast.heating_factor / mean_factor
        return (1.0 - heating_share) + heating_share * ratio

    # -- error metrics -----------------------------------------------------------

    def mean_absolute_error(
        self, prediction: PredictionResult, actual: PopulationDemand
    ) -> float:
        """Mean absolute error of the aggregate prediction (kW per slot)."""
        predicted = prediction.aggregate.as_array()
        realised = actual.aggregate.as_array()
        if predicted.shape != realised.shape:
            raise ValueError("prediction and actual have different resolutions")
        return float(np.mean(np.abs(predicted - realised)))

    def mean_absolute_percentage_error(
        self, prediction: PredictionResult, actual: PopulationDemand
    ) -> float:
        """MAPE of the aggregate prediction (fraction, not percent)."""
        predicted = prediction.aggregate.as_array()
        realised = actual.aggregate.as_array()
        if predicted.shape != realised.shape:
            raise ValueError("prediction and actual have different resolutions")
        mask = realised > 0
        if not mask.any():
            return 0.0
        return float(np.mean(np.abs(predicted[mask] - realised[mask]) / realised[mask]))
