"""Consumption prediction: the Utility Agent's statistical model.

"To predict the balance between consumption and production, available
information is analysed and predictions are calculated on the basis of
statistical models" (Section 5.1.2).  The :class:`ConsumptionPredictor`
implements this: it is trained on historical daily demand realisations
(optionally weather-tagged) and predicts the aggregate and per-household
demand for an upcoming day, with a configurable statistical model.

The predictor is *columnar*: observed days are appended to a
``(days, num_households, slots)`` history buffer (incremental — no
full-history refit per observed day), and a prediction is one weighted
reduction over that buffer.  :meth:`ConsumptionPredictor.predict_columnar`
exposes the array-native result (:class:`FleetPrediction`, per-household
*vectors* instead of ``dict[str, float]``); :meth:`ConsumptionPredictor.predict`
keeps the historical per-household ``LoadProfile`` mapping, materialised from
the same columnar core, so both views are bit-identical.

**Bounded memory.**  With ``history_window=None`` (the default) the buffer
grows by doubling and the predictor remembers every observed day — the
historical behaviour, O(days · N · slots) memory.  With
``history_window=w`` the buffer is a fixed ``(w, N, slots)`` *ring*: the
oldest day is overwritten once ``w`` days are live, so a campaign of any
length holds O(w · N · slots) predictor memory.  A windowed predictor that
has observed days ``d₁ … dₙ`` is bit-identical to a fresh unbounded
predictor fed only the last ``min(n, w)`` of those days — the ring is a
memory layout, never a behaviour change (``tests/test_campaign_properties
.py`` pins this property).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

import numpy as np

from repro.core.modes import validate_history_window
from repro.grid.demand import PopulationDemand
from repro.grid.load_profile import LoadProfile, matrix_average_in
from repro.grid.weather import WeatherSample
from repro.runtime.clock import TimeInterval


class PredictionModel(Enum):
    """Statistical model used for prediction."""

    #: Plain mean of historical profiles.
    MEAN = "mean"
    #: Exponentially weighted mean (recent days matter more).
    EXPONENTIAL_SMOOTHING = "exponential_smoothing"
    #: Mean of historical days re-scaled by the heating factor of the
    #: forecast weather relative to the historical average heating factor.
    WEATHER_ADJUSTED = "weather_adjusted"


@dataclass(frozen=True)
class PredictionResult:
    """A prediction of one day's demand (object view)."""

    aggregate: LoadProfile
    per_household: dict[str, LoadProfile]
    model: PredictionModel

    def household_prediction_in(self, interval: TimeInterval) -> dict[str, float]:
        """Predicted average demand (kW) per household during an interval."""
        return {
            household_id: profile.average_in(interval)
            for household_id, profile in self.per_household.items()
        }

    def aggregate_in(self, interval: TimeInterval) -> float:
        """Predicted average aggregate demand (kW) during an interval."""
        return self.aggregate.average_in(interval)


@dataclass(frozen=True)
class FleetPrediction:
    """A prediction of one day's demand (columnar view).

    ``matrix`` is ``(num_households, slots)`` with rows in ``household_ids``
    order; row ``i`` carries the same values as the per-household
    :class:`LoadProfile` of the object view.
    """

    household_ids: tuple[str, ...]
    matrix: np.ndarray
    aggregate: LoadProfile
    model: PredictionModel

    def average_in(self, interval: TimeInterval) -> np.ndarray:
        """Predicted average demand (kW) per household during an interval.

        The array-native counterpart of
        :meth:`PredictionResult.household_prediction_in`: one vector in
        ``household_ids`` order, bit-identical per household.
        """
        return matrix_average_in(self.matrix, interval)

    def aggregate_in(self, interval: TimeInterval) -> float:
        """Predicted average aggregate demand (kW) during an interval."""
        return self.aggregate.average_in(interval)

    def as_result(self) -> PredictionResult:
        """Materialise the object view (per-household ``LoadProfile`` mapping)."""
        per_household = {
            household_id: LoadProfile.from_array(row)
            for household_id, row in zip(self.household_ids, self.matrix)
        }
        return PredictionResult(self.aggregate, per_household, self.model)


class ConsumptionPredictor:
    """Predicts per-household and aggregate demand from history."""

    def __init__(
        self,
        model: PredictionModel = PredictionModel.MEAN,
        smoothing_factor: float = 0.4,
        history_window: Optional[int] = None,
    ) -> None:
        if not 0.0 < smoothing_factor <= 1.0:
            raise ValueError("smoothing factor must be in (0, 1]")
        self.model = model
        self.smoothing_factor = smoothing_factor
        self.history_window = validate_history_window(history_window)
        self._household_ids: Optional[list[str]] = None
        self._id_set: Optional[frozenset[str]] = None
        #: (capacity, N, S) history buffer.  Unbounded: rows [0, _num_days)
        #: are live and the buffer doubles when full.  Windowed: a fixed-size
        #: ring — the oldest live row sits at _start and writes wrap around.
        self._buffer: Optional[np.ndarray] = None
        self._num_days = 0
        self._start = 0
        self._total_days = 0
        self._weathers: list[Optional[WeatherSample]] = []

    # -- training -----------------------------------------------------------

    def observe(self, demand: PopulationDemand) -> None:
        """Record one realised day of demand (incremental, no refit)."""
        matrix = demand.matrix()
        day_ids = demand.household_ids
        if self._household_ids is None:
            self._household_ids = day_ids
            self._id_set = frozenset(day_ids)
        elif set(day_ids) != self._id_set:
            raise ValueError("all observed days must cover the same households")
        elif day_ids != self._household_ids:
            # Buffer rows are positional; realign a day whose profiles come in
            # a different id order (the object path looked profiles up by id).
            position = {household_id: row for row, household_id in enumerate(day_ids)}
            matrix = matrix[[position[household_id] for household_id in self._household_ids]]
        if self._buffer is None:
            capacity = self.history_window if self.history_window is not None else 8
            self._buffer = np.empty((capacity,) + matrix.shape)
        elif matrix.shape != self._buffer.shape[1:]:
            raise ValueError("all observed days must share one demand resolution")
        elif self._num_days == self._buffer.shape[0] and self.history_window is None:
            grown = np.empty((2 * self._buffer.shape[0],) + self._buffer.shape[1:])
            grown[: self._num_days] = self._buffer[: self._num_days]
            self._buffer = grown
        capacity = self._buffer.shape[0]
        if self._num_days < capacity:
            self._buffer[(self._start + self._num_days) % capacity] = matrix
            self._num_days += 1
        else:
            # Ring is full: the new day overwrites the oldest one.
            self._buffer[self._start] = matrix
            self._start = (self._start + 1) % capacity
            self._weathers.pop(0)
        self._total_days += 1
        self._weathers.append(demand.weather)

    def observe_many(self, demands: Sequence[PopulationDemand]) -> None:
        for demand in demands:
            self.observe(demand)

    @property
    def history_length(self) -> int:
        """Days currently *retained* (capped at ``history_window`` when set)."""
        return self._num_days

    @property
    def observed_days(self) -> int:
        """Total days ever observed (monotonic, unaffected by the window)."""
        return self._total_days

    def history_nbytes(self) -> int:
        """Bytes held by the history buffer (memory-regression guards)."""
        return self._buffer.nbytes if self._buffer is not None else 0

    def set_history_window(self, history_window: Optional[int]) -> None:
        """Re-bound the observation window, dropping the oldest days if needed.

        Shrinking keeps the most recent ``history_window`` days; widening (or
        ``None`` for unbounded) keeps everything currently retained.  Future
        predictions behave exactly as if the retained days were the whole
        history.
        """
        window = validate_history_window(history_window)
        if window == self.history_window and self._buffer is not None:
            return
        self.history_window = window
        if self._buffer is None:
            return
        live = np.array(self._chronological_history())
        if window is not None and live.shape[0] > window:
            live = live[-window:]
            self._weathers = self._weathers[-window:]
        capacity = window if window is not None else max(8, live.shape[0])
        rebuilt = np.empty((capacity,) + self._buffer.shape[1:])
        rebuilt[: live.shape[0]] = live
        self._buffer = rebuilt
        self._num_days = live.shape[0]
        self._start = 0

    def _chronological_history(self) -> np.ndarray:
        """The live history rows, oldest first (unwraps the ring)."""
        if self._start == 0:
            return self._buffer[: self._num_days]
        capacity = self._buffer.shape[0]
        indices = (self._start + np.arange(self._num_days)) % capacity
        return self._buffer[indices]

    # -- prediction -----------------------------------------------------------

    def predict_columnar(
        self, forecast_weather: Optional[WeatherSample] = None
    ) -> FleetPrediction:
        """Predict the next day's demand as per-household arrays.

        Raises
        ------
        ValueError
            If no history has been observed yet.
        """
        if self._num_days == 0:
            raise ValueError("cannot predict without any observed history")
        weights = self._weights()
        history = self._chronological_history()
        matrix = np.average(history, axis=0, weights=weights)
        adjustment = self._weather_adjustment(forecast_weather)
        if adjustment != 1.0:
            matrix = matrix * adjustment
        matrix.setflags(write=False)
        aggregate = LoadProfile.from_array(matrix.sum(axis=0))
        return FleetPrediction(
            household_ids=tuple(self._household_ids),
            matrix=matrix,
            aggregate=aggregate,
            model=self.model,
        )

    def predict(self, forecast_weather: Optional[WeatherSample] = None) -> PredictionResult:
        """Predict the next day's demand (object view of :meth:`predict_columnar`).

        Raises
        ------
        ValueError
            If no history has been observed yet.
        """
        return self.predict_columnar(forecast_weather).as_result()

    def _weights(self) -> np.ndarray:
        n = self._num_days
        if self.model is PredictionModel.EXPONENTIAL_SMOOTHING and n > 1:
            alpha = self.smoothing_factor
            weights = np.array([(1 - alpha) ** (n - 1 - i) for i in range(n)])
            return weights / weights.sum()
        return np.full(n, 1.0 / n)

    def _weather_adjustment(self, forecast: Optional[WeatherSample]) -> float:
        if self.model is not PredictionModel.WEATHER_ADJUSTED or forecast is None:
            return 1.0
        historical_factors = [
            weather.heating_factor for weather in self._weathers if weather is not None
        ]
        if not historical_factors:
            return 1.0
        mean_factor = float(np.mean(historical_factors))
        if mean_factor <= 0:
            return 1.0
        # Heating is roughly half of winter domestic load; scale that share.
        heating_share = 0.5
        ratio = forecast.heating_factor / mean_factor
        return (1.0 - heating_share) + heating_share * ratio

    # -- error metrics -----------------------------------------------------------

    def mean_absolute_error(
        self, prediction: PredictionResult, actual: PopulationDemand
    ) -> float:
        """Mean absolute error of the aggregate prediction (kW per slot)."""
        predicted = prediction.aggregate.as_array()
        realised = actual.aggregate.as_array()
        if predicted.shape != realised.shape:
            raise ValueError("prediction and actual have different resolutions")
        return float(np.mean(np.abs(predicted - realised)))

    def mean_absolute_percentage_error(
        self, prediction: PredictionResult, actual: PopulationDemand
    ) -> float:
        """MAPE of the aggregate prediction (fraction, not percent)."""
        predicted = prediction.aggregate.as_array()
        realised = actual.aggregate.as_array()
        if predicted.shape != realised.shape:
            raise ValueError("prediction and actual have different resolutions")
        mask = realised > 0
        if not mask.any():
            return 0.0
        return float(np.mean(np.abs(predicted[mask] - realised[mask]) / realised[mask]))
