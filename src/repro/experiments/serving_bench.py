"""Serving benchmark: coalesced vs sequential negotiation throughput.

Measures what the request-coalescing micro-batcher buys: the same 64-request
workload (8 synthetic towns × 8 reward-table β values, 200 households each)
is pushed through a live :class:`~repro.serve.server.NegotiationServer`
twice —

* **concurrent**: all requests submitted at once from a client thread pool,
  so the batcher packs them into full combined-arena kernel passes;
* **sequential**: one request at a time, each waiting for its result before
  the next submits — every request pays the solo path plus the batcher's
  ``max_wait`` window alone.

Both phases run against a fresh server (own population cache, own metrics),
so the comparison is fair.  The headline numbers — wall-clock per phase, the
speedup, how many combined kernel passes served the 64 requests, and the
batch occupancy — land in ``benchmarks/BENCH_serving.json`` via
``benchmarks/run_bench.py``; ``--check`` replays the workload and fails on
behaviour drift or throughput regression.
"""

from __future__ import annotations

import json
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Optional

from repro.serve.server import ServerThread

#: The committed workload shape: 8 towns × 8 betas at 200 households.
SERVING_REQUESTS = 64
SERVING_HOUSEHOLDS = 200
SERVING_TOWNS = 8
SERVING_MAX_BATCH = 8
SERVING_MAX_WAIT = 0.05
#: Client-side submission threads for the concurrent phase.
SERVING_CLIENT_THREADS = 16


def serving_workload(
    num_requests: int = SERVING_REQUESTS,
    households: int = SERVING_HOUSEHOLDS,
    towns: int = SERVING_TOWNS,
) -> list[dict[str, Any]]:
    """The request bodies: ``towns`` seeds crossed with escalating betas."""
    return [
        {
            "scenario": {
                "households": households,
                "seed": index % towns,
                "beta": 1.0 + 0.5 * (index // towns),
            }
        }
        for index in range(num_requests)
    ]


@dataclass
class ServingBenchEntry:
    """One serving-benchmark run (both phases) and its metrics."""

    num_requests: int
    households: int
    max_batch: int
    max_wait: float
    concurrent_seconds: float
    sequential_seconds: float
    kernel_passes: int
    solo_passes: int
    mean_occupancy: float
    max_occupancy: int
    latency_p50: float
    latency_p95: float
    total_rounds: int
    total_reward_paid: float

    @property
    def speedup(self) -> float:
        if self.concurrent_seconds <= 0:
            return float("inf")
        return self.sequential_seconds / self.concurrent_seconds

    def as_row(self) -> dict[str, Any]:
        return {
            "num_requests": self.num_requests,
            "households": self.households,
            "max_batch": self.max_batch,
            "max_wait": self.max_wait,
            "concurrent_seconds": self.concurrent_seconds,
            "sequential_seconds": self.sequential_seconds,
            "speedup": self.speedup,
            "kernel_passes": self.kernel_passes,
            "solo_passes": self.solo_passes,
            "mean_occupancy": self.mean_occupancy,
            "max_occupancy": self.max_occupancy,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "total_rounds": self.total_rounds,
            "total_reward_paid": self.total_reward_paid,
        }

    def render(self) -> str:
        return (
            f"Serving benchmark: {self.num_requests} requests x "
            f"{self.households} households "
            f"(max_batch={self.max_batch}, max_wait={self.max_wait}s)\n"
            f"  concurrent: {self.concurrent_seconds:.2f}s over "
            f"{self.kernel_passes} coalesced kernel passes "
            f"(occupancy mean {self.mean_occupancy:.1f}, max {self.max_occupancy}; "
            f"latency p50 {self.latency_p50:.3f}s p95 {self.latency_p95:.3f}s)\n"
            f"  sequential: {self.sequential_seconds:.2f}s\n"
            f"  speedup:    {self.speedup:.1f}x"
        )


def _post_json(base: str, path: str, body: dict) -> dict:
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data, method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=300) as response:
        return json.load(response)


def _get_json(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=300) as response:
        return json.load(response)


def run_serving_bench(
    num_requests: int = SERVING_REQUESTS,
    households: int = SERVING_HOUSEHOLDS,
    max_batch: int = SERVING_MAX_BATCH,
    max_wait: float = SERVING_MAX_WAIT,
    workers: Optional[int] = None,
) -> ServingBenchEntry:
    """Run both phases against fresh in-process servers and collect metrics."""
    workload = serving_workload(num_requests, households)

    # -- concurrent phase -------------------------------------------------------
    with ServerThread(port=0, max_batch=max_batch, max_wait=max_wait, workers=workers) as thread:
        base = thread.server.base_url
        started = perf_counter()
        with ThreadPoolExecutor(SERVING_CLIENT_THREADS) as pool:
            session_ids = list(
                pool.map(lambda body: _post_json(base, "/submit", body)["session_id"], workload)
            )
            results = list(
                pool.map(
                    lambda sid: _get_json(base, f"/result/{sid}?wait=1"), session_ids
                )
            )
        concurrent_seconds = perf_counter() - started
        metrics = _get_json(base, "/metrics")
    failed = [record for record in results if record["state"] != "done"]
    if failed:
        raise RuntimeError(
            f"serving benchmark: {len(failed)} requests failed, first: "
            f"{failed[0].get('error')}"
        )
    total_rounds = sum(record["result"]["rounds"] for record in results)
    total_reward = sum(record["result"]["total_reward_paid"] for record in results)

    # -- sequential phase -------------------------------------------------------
    with ServerThread(port=0, max_batch=max_batch, max_wait=max_wait, workers=workers) as thread:
        base = thread.server.base_url
        started = perf_counter()
        for body in workload:
            session_id = _post_json(base, "/submit", body)["session_id"]
            record = _get_json(base, f"/result/{session_id}?wait=1")
            if record["state"] != "done":
                raise RuntimeError(
                    f"serving benchmark (sequential): request failed: "
                    f"{record.get('error')}"
                )
        sequential_seconds = perf_counter() - started

    return ServingBenchEntry(
        num_requests=num_requests,
        households=households,
        max_batch=max_batch,
        max_wait=max_wait,
        concurrent_seconds=concurrent_seconds,
        sequential_seconds=sequential_seconds,
        kernel_passes=metrics["kernel_passes"],
        solo_passes=metrics["solo_passes"],
        mean_occupancy=metrics["batch_occupancy"]["mean"],
        max_occupancy=metrics["batch_occupancy"]["max"],
        latency_p50=metrics["latency_seconds"]["p50"],
        latency_p95=metrics["latency_seconds"]["p95"],
        total_rounds=total_rounds,
        total_reward_paid=total_reward,
    )


def write_serving_json(path, entry: ServingBenchEntry, seed: int = 0):
    """Persist the serving trajectory next to the other BENCH artefacts."""
    payload = {"seed": seed, "serving": entry.as_row()}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
