"""Overload benchmark: a burst past admission capacity, end to end.

The admission-control acceptance experiment.  A burst of ``burst_factor`` ×
``max_queue`` concurrent submissions hits a live
:class:`~repro.serve.server.NegotiationServer` whose admission queue is
deliberately small, and the bench asserts the overload contract request by
request:

* every submission terminates **deterministically** — either admitted (202)
  or shed (429 with a ``Retry-After`` header and a machine-readable reason);
  nothing hangs;
* every admitted request completes, and its payload is **bit-identical** to
  a solo ``repro.api.run`` of the same request body (overload must never
  change arithmetic);
* every shed request, resubmitted through the self-healing
  :class:`~repro.serve.client.ServeClient` (capped jittered retry honouring
  ``Retry-After``), eventually completes with the same bit-identical payload
  — shedding is a delay, not a data loss;
* a probe request with a 1 ms ``deadline_ms`` terminates in the ``expired``
  state with a ``deadline_exceeded`` error;
* the p99 **queue wait** stays bounded — the number the admission bound
  exists to keep flat under overload.

The headline numbers land in ``benchmarks/BENCH_overload.json`` via
``benchmarks/run_bench.py``; ``--check`` replays the burst and fails on any
hung request, any bit-identity violation, a burst that failed to shed (the
workload no longer overloads the queue) or an unbounded p99 queue wait.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Optional

import urllib.error
import urllib.request

import repro.api as api
from repro.serve.client import RetriesExhausted, ServeClient
from repro.serve.schemas import ServeRequest, result_payload
from repro.serve.server import ServerThread

#: The committed overload workload shape.
OVERLOAD_MAX_QUEUE = 8
OVERLOAD_BURST_FACTOR = 4
OVERLOAD_HOUSEHOLDS = 40
OVERLOAD_MAX_BATCH = 4
OVERLOAD_MAX_WAIT = 0.02
OVERLOAD_TOWNS = 4
#: Per-request completion budget before it counts as hung.
OVERLOAD_RESULT_TIMEOUT = 120.0


def overload_workload(
    num_requests: int,
    households: int = OVERLOAD_HOUSEHOLDS,
    towns: int = OVERLOAD_TOWNS,
) -> list[dict[str, Any]]:
    """The burst bodies: ``towns`` seeds crossed with escalating betas."""
    return [
        {
            "scenario": {
                "households": households,
                "seed": index % towns,
                "beta": 1.0 + 0.5 * (index // towns),
            }
        }
        for index in range(num_requests)
    ]


@dataclass
class OverloadBenchEntry:
    """One overload-burst run and its per-request accounting."""

    num_requests: int
    households: int
    max_queue: int
    burst_factor: int
    admitted: int
    shed: int
    sheds_with_retry_after: int
    retried_to_completion: int
    hung: int
    bit_identical: int
    bit_mismatches: int
    deadline_probe_expired: bool
    p99_queue_wait: float
    burst_seconds: float
    total_seconds: float

    def as_row(self) -> dict[str, Any]:
        return {
            "num_requests": self.num_requests,
            "households": self.households,
            "max_queue": self.max_queue,
            "burst_factor": self.burst_factor,
            "admitted": self.admitted,
            "shed": self.shed,
            "sheds_with_retry_after": self.sheds_with_retry_after,
            "retried_to_completion": self.retried_to_completion,
            "hung": self.hung,
            "bit_identical": self.bit_identical,
            "bit_mismatches": self.bit_mismatches,
            "deadline_probe_expired": self.deadline_probe_expired,
            "p99_queue_wait": self.p99_queue_wait,
            "burst_seconds": self.burst_seconds,
            "total_seconds": self.total_seconds,
        }

    def render(self) -> str:
        return (
            f"Overload benchmark: {self.num_requests} requests burst at "
            f"{self.burst_factor}x a {self.max_queue}-slot admission queue "
            f"({self.households} households each)\n"
            f"  admitted: {self.admitted}  shed: {self.shed} "
            f"(all with Retry-After: "
            f"{self.sheds_with_retry_after == self.shed})\n"
            f"  retried to completion: {self.retried_to_completion}  "
            f"hung: {self.hung}\n"
            f"  bit-identical to solo: {self.bit_identical}/"
            f"{self.bit_identical + self.bit_mismatches}\n"
            f"  deadline probe expired cleanly: {self.deadline_probe_expired}\n"
            f"  p99 queue wait: {self.p99_queue_wait:.3f}s  "
            f"burst: {self.burst_seconds:.2f}s  total: {self.total_seconds:.2f}s"
        )


def _solo_payload(body: dict[str, Any], cache: dict) -> dict[str, Any]:
    """The canonical solo payload of one request body (memoised)."""
    key = json.dumps(body, sort_keys=True)
    if key not in cache:
        request = ServeRequest.from_mapping(body)
        result = api.run(
            request.scenario.build_scenario(),
            backend=request.backend,
            config=request.config,
        )
        cache[key] = result_payload(result)
    return cache[key]


def run_overload_bench(
    max_queue: int = OVERLOAD_MAX_QUEUE,
    burst_factor: int = OVERLOAD_BURST_FACTOR,
    households: int = OVERLOAD_HOUSEHOLDS,
    max_batch: int = OVERLOAD_MAX_BATCH,
    max_wait: float = OVERLOAD_MAX_WAIT,
    workers: Optional[int] = None,
) -> OverloadBenchEntry:
    """Run the burst against a fresh in-process server and account for it."""
    num_requests = max_queue * burst_factor
    workload = overload_workload(num_requests, households)
    started_total = perf_counter()
    with ServerThread(
        port=0,
        max_queue=max_queue,
        max_batch=max_batch,
        max_wait=max_wait,
        workers=workers,
    ) as thread:
        base = thread.server.base_url

        # Raw burst, no client-side retry: every 429 — and whether it
        # carried the Retry-After header — stays visible per request.
        def submit_raw(body: dict) -> dict:
            request = urllib.request.Request(
                base + "/submit",
                data=json.dumps(body).encode("utf-8"),
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=60) as response:
                    payload = json.loads(response.read())
                return {"outcome": "admitted", "session_id": payload["session_id"]}
            except urllib.error.HTTPError as error:
                error.read()
                return {
                    "outcome": "shed",
                    "status": error.code,
                    "retry_after": error.headers.get("Retry-After"),
                }

        started_burst = perf_counter()
        with ThreadPoolExecutor(num_requests) as pool:
            dispositions = list(pool.map(submit_raw, workload))
        burst_seconds = perf_counter() - started_burst

        shed_total = sum(1 for d in dispositions if d["outcome"] == "shed")
        sheds_with_retry_after = sum(
            1
            for d in dispositions
            if d["outcome"] == "shed"
            and d["status"] == 429
            and d["retry_after"] is not None
        )

        # Drain: every admitted request must terminate with a bit-identical
        # payload; a request that cannot produce a terminal record in budget
        # is hung — the thing this subsystem exists to make impossible.
        wait_client = ServeClient(base, max_retries=8, backoff_cap=2.0)
        solo_cache: dict[str, dict] = {}
        hung = 0
        bit_identical = 0
        bit_mismatches = 0
        for body, disposition in zip(workload, dispositions):
            if disposition["outcome"] != "admitted":
                continue
            try:
                record = wait_client.result(
                    disposition["session_id"],
                    wait=True,
                    wait_timeout=15.0,
                    overall_timeout=OVERLOAD_RESULT_TIMEOUT,
                )
            except RetriesExhausted:
                hung += 1
                continue
            if record["state"] != "done":
                hung += 1
                continue
            expected = _solo_payload(body, solo_cache)
            if json.dumps(record["result"], sort_keys=True) == json.dumps(
                expected, sort_keys=True
            ):
                bit_identical += 1
            else:
                bit_mismatches += 1

        # Self-healing: resubmit every shed request through the retrying
        # client (honours Retry-After) — sheds are delays, not losses.
        retried_to_completion = 0
        retry_client = ServeClient(base, max_retries=10, backoff_cap=2.0)
        for body, disposition in zip(workload, dispositions):
            if disposition["outcome"] != "shed":
                continue
            try:
                accepted = retry_client.submit(body)
                record = retry_client.result(
                    accepted["session_id"],
                    wait=True,
                    wait_timeout=15.0,
                    overall_timeout=OVERLOAD_RESULT_TIMEOUT,
                )
            except RetriesExhausted:
                hung += 1
                continue
            if record["state"] != "done":
                hung += 1
                continue
            expected = _solo_payload(body, solo_cache)
            if json.dumps(record["result"], sort_keys=True) == json.dumps(
                expected, sort_keys=True
            ):
                bit_identical += 1
                retried_to_completion += 1
            else:
                bit_mismatches += 1

        # Deadline probe: a 1 ms budget expires inside the coalescing buffer
        # (the flush window alone exceeds it) → clean `expired` record.
        probe_client = ServeClient(base, max_retries=10, backoff_cap=2.0)
        probe_body = dict(workload[0])
        probe_body["deadline_ms"] = 1
        deadline_probe_expired = False
        try:
            accepted = probe_client.submit(probe_body)
            record = probe_client.result(
                accepted["session_id"],
                wait=True,
                wait_timeout=15.0,
                overall_timeout=60.0,
            )
            deadline_probe_expired = (
                record["state"] == "expired"
                and "deadline_exceeded" in (record.get("error") or "")
            )
        except RetriesExhausted:
            pass

        metrics = probe_client.metrics()
        p99_queue_wait = metrics["queue_wait_seconds"]["p99"]

    return OverloadBenchEntry(
        num_requests=num_requests,
        households=households,
        max_queue=max_queue,
        burst_factor=burst_factor,
        admitted=sum(1 for d in dispositions if d["outcome"] == "admitted"),
        shed=shed_total,
        sheds_with_retry_after=sheds_with_retry_after,
        retried_to_completion=retried_to_completion,
        hung=hung,
        bit_identical=bit_identical,
        bit_mismatches=bit_mismatches,
        deadline_probe_expired=deadline_probe_expired,
        p99_queue_wait=p99_queue_wait,
        burst_seconds=burst_seconds,
        total_seconds=perf_counter() - started_total,
    )


def write_overload_json(path, entry: OverloadBenchEntry, seed: int = 0):
    """Persist the overload trajectory next to the other BENCH artefacts."""
    payload = {"seed": seed, "overload": entry.as_row()}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
