"""Experiment E6 — comparing the three announcement methods (Section 3.2.4).

The paper argues that none of the three methods dominates: the offer method
is fast but gives customers no influence; the request-for-bids method gives
customers influence but takes many rounds; the reward-table method sits in
between.  This experiment runs all three mechanisms on the same synthetic
population and compares rounds, messages, peak reduction, money spent by the
utility and customer surplus — making the qualitative trade-off of Section
3.2.4 quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.metrics import MethodMetrics, summarise_results
from repro.analysis.reporting import format_table
from repro.core.results import NegotiationResult
from repro.core.scenario import Scenario, synthetic_scenario
from repro import api
from repro.negotiation.methods.base import NegotiationMethod
from repro.negotiation.methods.offer import OfferMethod
from repro.negotiation.methods.request_for_bids import RequestForBidsMethod
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.strategy import ConstantBeta


@dataclass
class MethodComparisonResult:
    """Per-method results and aggregate metrics on a common population."""

    results: dict[str, list[NegotiationResult]]

    def metrics(self) -> list[MethodMetrics]:
        return [summarise_results(runs) for runs in self.results.values()]

    def rows(self) -> list[dict[str, object]]:
        return [metric.as_dict() for metric in self.metrics()]

    def method_metric(self, method: str) -> MethodMetrics:
        if method not in self.results:
            raise KeyError(f"no results for method {method!r}")
        return summarise_results(self.results[method])

    def fastest_method(self) -> str:
        """Method with the fewest rounds (the offer method, per the paper)."""
        return min(self.metrics(), key=lambda m: m.mean_rounds).method

    def render(self) -> str:
        return format_table(self.rows(), title="E6 — announcement-method comparison")


def _build_methods(
    max_reward: float, beta: float, x_max: float, step_fraction: float
) -> dict[str, NegotiationMethod]:
    return {
        "offer": OfferMethod(x_max=x_max),
        "request_for_bids": RequestForBidsMethod(step_fraction=step_fraction),
        "reward_tables": RewardTablesMethod(
            max_reward=max_reward, beta_controller=ConstantBeta(beta)
        ),
    }


def run_method_comparison(
    num_households: int = 40,
    seeds: Sequence[int] = (0, 1, 2),
    max_reward: float = 60.0,
    beta: float = 2.0,
    x_max: float = 0.8,
    step_fraction: float = 0.1,
) -> MethodComparisonResult:
    """Run all three methods on the same populations (one per seed)."""
    if not seeds:
        raise ValueError("need at least one seed")
    results: dict[str, list[NegotiationResult]] = {
        "offer": [],
        "request_for_bids": [],
        "reward_tables": [],
    }
    for seed in seeds:
        methods = _build_methods(max_reward, beta, x_max, step_fraction)
        for method_name, method in methods.items():
            base = synthetic_scenario(
                num_households=num_households, seed=seed, method=method
            )
            scenario = Scenario(
                name=f"method_comparison_{method_name}_{seed}",
                population=base.population,
                method=method,
                weather=base.weather,
            )
            result = api.run(scenario, seed=seed)
            results[method_name].append(result)
    return MethodComparisonResult(results=results)
