"""Registry mapping experiment ids to runnable entry points.

The ids follow the per-experiment index of ``DESIGN.md``; the benchmark files
under ``benchmarks/`` and the examples resolve experiments through this
registry so the mapping stays in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.beta_sweep import run_beta_sweep
from repro.experiments.fig1_demand_curve import run_demand_curve
from repro.experiments.fig6_fig7_utility_rounds import run_utility_rounds
from repro.experiments.fig8_fig9_customer_rounds import run_customer_rounds
from repro.experiments.market_comparison import run_market_comparison
from repro.experiments.method_comparison import run_method_comparison
from repro.experiments.protocol_convergence import run_protocol_convergence
from repro.experiments.reward_update_dynamics import run_reward_dynamics
from repro.experiments.scalability import run_scalability


@dataclass(frozen=True)
class ExperimentInfo:
    """Metadata and entry point of one experiment."""

    experiment_id: str
    paper_artefact: str
    description: str
    runner: Callable[..., object]


EXPERIMENTS: dict[str, ExperimentInfo] = {
    "E1": ExperimentInfo(
        experiment_id="E1",
        paper_artefact="Figure 1",
        description="Daily demand curve with an expensive-production peak",
        runner=run_demand_curve,
    ),
    "E2": ExperimentInfo(
        experiment_id="E2",
        paper_artefact="Figure 6",
        description="Utility Agent, round 1: overuse 35, reward 17 at cut-down 0.4",
        runner=run_utility_rounds,
    ),
    "E3": ExperimentInfo(
        experiment_id="E3",
        paper_artefact="Figure 7",
        description="Utility Agent, round 3: overuse ~13, reward ~24.8 at cut-down 0.4",
        runner=run_utility_rounds,
    ),
    "E4": ExperimentInfo(
        experiment_id="E4",
        paper_artefact="Figures 8 and 9",
        description="Customer Agent requirement table and per-round bids (0.2, 0.4, 0.4)",
        runner=run_customer_rounds,
    ),
    "E5": ExperimentInfo(
        experiment_id="E5",
        paper_artefact="Section 6 formulae",
        description="Logistic reward-escalation dynamics (monotone, bounded, saturating)",
        runner=run_reward_dynamics,
    ),
    "E6": ExperimentInfo(
        experiment_id="E6",
        paper_artefact="Section 3.2.4",
        description="Offer vs request-for-bids vs reward-tables on a common population",
        runner=run_method_comparison,
    ),
    "E7": ExperimentInfo(
        experiment_id="E7",
        paper_artefact="Section 7 (dynamic beta)",
        description="Constant-beta sweep plus the adaptive-beta controller",
        runner=run_beta_sweep,
    ),
    "E8": ExperimentInfo(
        experiment_id="E8",
        paper_artefact="Section 7 / refs [1][12]",
        description="Reward-table negotiation vs equilibrium computational market",
        runner=run_market_comparison,
    ),
    "E9": ExperimentInfo(
        experiment_id="E9",
        paper_artefact="Section 5 (large numbers of Customer Agents)",
        description="Scalability sweep over the population size",
        runner=run_scalability,
    ),
    "E10": ExperimentInfo(
        experiment_id="E10",
        paper_artefact="Section 3.1",
        description="Monotonic concession protocol always converges (randomised populations)",
        runner=run_protocol_convergence,
    ),
}


def get_experiment(experiment_id: str) -> ExperimentInfo:
    """Look up one experiment by id (raises ``KeyError`` for unknown ids)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known ids: {known}") from None
