"""Experiments E2/E3 — Figures 6 and 7: the Utility Agent across rounds.

Figure 6 shows the Utility Agent at the start of the prototype negotiation:
normal capacity 100, predicted usage 135 (overuse 35), and the round-1 reward
table offering, e.g., a reward of 17 for a cut-down of 0.4.  Figure 7 shows
the third (final) round: the predicted overuse has fallen to 13 and the
announced reward for a cut-down of 0.4 has risen to 24.8.

This experiment runs the calibrated prototype scenario end to end through the
multi-agent session and reports exactly those quantities per round, together
with the paper's reference values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.plotting import ascii_trajectories
from repro.analysis.reporting import format_key_values, format_table
from repro.core.results import NegotiationResult
from repro.core.scenario import paper_prototype_scenario
from repro import api
from repro.negotiation.messages import RewardTableAnnouncement

#: The quantities the paper reports in Figures 6 and 7.
PAPER_REFERENCE = {
    "normal_capacity": 100.0,
    "initial_predicted_usage": 135.0,
    "initial_overuse": 35.0,
    "round1_reward_at_0.4": 17.0,
    "round3_reward_at_0.4": 24.8,
    "final_overuse": 13.0,
    "rounds": 3,
}


@dataclass
class UtilityRoundsResult:
    """Per-round Utility Agent view of the calibrated prototype run."""

    result: NegotiationResult

    # -- per-round data ---------------------------------------------------------

    def rows(self) -> list[dict[str, float]]:
        """One row per negotiation round (paper rounds are 1-based)."""
        rows = []
        for record in self.result.record.rounds:
            announcement = record.announcement
            reward_04 = None
            if isinstance(announcement, RewardTableAnnouncement):
                reward_04 = announcement.table.reward_for(0.4)
            rows.append(
                {
                    "round": record.round_number + 1,
                    "predicted_overuse_before": record.predicted_overuse_before,
                    "predicted_overuse_after": record.predicted_overuse_after,
                    "reward_at_0.4": reward_04 if reward_04 is not None else 0.0,
                    "participation": record.participation,
                }
            )
        return rows

    def reward_table_rows(self, round_index: int) -> list[dict[str, float]]:
        """The full announced reward table of one round (0-based index)."""
        record = self.result.record.rounds[round_index]
        announcement = record.announcement
        if not isinstance(announcement, RewardTableAnnouncement):
            raise TypeError("the prototype scenario announces reward tables")
        return announcement.table.as_rows()

    # -- paper comparison ------------------------------------------------------------

    def measured(self) -> dict[str, float]:
        """The measured counterparts of the paper's Figure 6/7 values."""
        rewards_04 = self.result.reward_trajectory(0.4)
        return {
            "normal_capacity": self.result.record.normal_use,
            "initial_predicted_usage": self.result.record.normal_use
            + self.result.initial_overuse,
            "initial_overuse": self.result.initial_overuse,
            "round1_reward_at_0.4": rewards_04[0] if rewards_04 else 0.0,
            "round3_reward_at_0.4": rewards_04[2] if len(rewards_04) >= 3 else (
                rewards_04[-1] if rewards_04 else 0.0
            ),
            "final_overuse": self.result.final_overuse,
            "rounds": self.result.rounds,
        }

    def comparison_rows(self) -> list[dict[str, object]]:
        measured = self.measured()
        rows = []
        for key, paper_value in PAPER_REFERENCE.items():
            measured_value = measured[key]
            rows.append(
                {
                    "quantity": key,
                    "paper": paper_value,
                    "measured": measured_value,
                    "relative_error": (
                        abs(measured_value - paper_value) / paper_value
                        if paper_value
                        else 0.0
                    ),
                }
            )
        return rows

    def render(self) -> str:
        rounds_table = format_table(self.rows(), title="Figure 6/7 — Utility Agent per round")
        comparison = format_table(
            self.comparison_rows(), title="Paper vs measured (Figures 6 and 7)"
        )
        trajectories = ascii_trajectories(
            {
                "overuse": self.result.overuse_trajectory(),
                "reward@0.4": self.result.reward_trajectory(0.4),
            },
            title="Trajectories",
        )
        first_table = format_table(
            self.reward_table_rows(0), title="Round 1 announced reward table (Figure 6)"
        )
        last_table = format_table(
            self.reward_table_rows(self.result.rounds - 1),
            title="Final round announced reward table (Figure 7)",
        )
        return "\n\n".join([rounds_table, comparison, trajectories, first_table, last_table])


def run_utility_rounds(
    beta: Optional[float] = None, seed: int = 0
) -> UtilityRoundsResult:
    """Run the calibrated prototype scenario and collect the Figure 6/7 view."""
    scenario = paper_prototype_scenario(beta=beta)
    result = api.run(scenario, seed=seed)
    return UtilityRoundsResult(result=result)
