"""Experiment E9 — scalability in the number of Customer Agents.

The paper's framing is explicitly about "a (large) number of Customer
Agents", but the prototype only demonstrates a handful.  This experiment
sweeps the population size and measures how the negotiation behaves as it
grows: rounds to converge, messages exchanged, wall-clock time per run and
the achieved peak reduction.  Message volume should grow linearly in the
number of customers and rounds should stay roughly flat, which is the
property that makes the announcement-based protocol usable at scale.

Two execution paths are available:

* the faithful **object path** (:class:`~repro.core.session.NegotiationSession`,
  one agent object per household, one message object per delivery), which
  tops out at a few hundred households; and
* the vectorized **fast path** (:class:`~repro.core.fast_session.FastSession`
  over a :class:`~repro.agents.vectorized.VectorizedPopulation`), which
  evaluates every customer's bid decision in batched numpy calls and scales
  to 10,000 households while producing identical negotiation outcomes.

A third path, the **sharded runtime**
(:class:`~repro.core.sharded_session.ShardedSession`), partitions the
vectorized population into per-core shards and fans each round's kernels out
to a thread pool; identical outcomes again, and the sweep extends to 50,000
households to track the multi-core trajectory.

All paths run through the :mod:`repro.api` engine façade with an explicitly
chosen backend (``"object"`` / ``"vectorized"`` / ``"sharded"``), since the
sweep exists to measure the paths against each other.
``run_scalability(fast=True)`` selects the fast path and
``run_scalability(backend="sharded", shards=K)`` the sharded runtime;
:func:`write_benchmark_json` emits the measured trajectories as a
machine-readable artefact (``benchmarks/BENCH_scalability.json``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro import api
from repro.agents.sharded import default_shard_count
from repro.analysis.reporting import format_table
from repro.core.results import NegotiationResult
from repro.core.scenario import synthetic_scenario

#: Default sweep of the fast path: two orders of magnitude beyond the object
#: path's practical ceiling.
FAST_PATH_SIZES: tuple[int, ...] = (10, 50, 200, 1000, 5000, 10000)

#: Default sweep of the sharded runtime: starts where auto-selection starts
#: considering shards and extends the trajectory to 50k households.
SHARDED_SIZES: tuple[int, ...] = (5000, 10000, 20000, 50000)

#: Human-readable path label per backend (kept stable for the JSON artefact:
#: ``"fast"`` predates the backend registry).
_PATH_LABELS = {"object": "object", "vectorized": "fast", "sharded": "sharded"}


@dataclass
class ScalabilityEntry:
    """One population size."""

    num_households: int
    result: NegotiationResult
    wall_seconds: float

    def as_row(self) -> dict[str, float]:
        return {
            "num_households": self.num_households,
            "rounds": self.result.rounds,
            "messages": self.result.messages_sent,
            "messages_per_household": self.result.messages_sent / self.num_households,
            "peak_reduction_fraction": self.result.peak_reduction_fraction,
            "wall_seconds": self.wall_seconds,
        }


@dataclass
class ScalabilityResult:
    """The full population-size sweep."""

    entries: list[ScalabilityEntry]
    fast_path: bool = False
    #: Engine backend that carried the sweep ("object"/"vectorized"/"sharded").
    backend: str = ""
    #: Worker count for sharded sweeps (``None`` otherwise).
    shards: Optional[int] = None

    @property
    def path_label(self) -> str:
        """Stable artefact label: "object", "fast" or "sharded"."""
        if self.backend:
            return _PATH_LABELS.get(self.backend, self.backend)
        return "fast" if self.fast_path else "object"

    def rows(self) -> list[dict[str, float]]:
        return [entry.as_row() for entry in self.entries]

    def messages_scale_linearly(self, tolerance: float = 0.5) -> bool:
        """Messages per household should stay within a band as size grows.

        ``tolerance`` is the allowed relative deviation of the per-household
        message count from the smallest population's value (rounds may differ
        by one or two, so some slack is needed).
        """
        if len(self.entries) < 2:
            return True
        reference = self.entries[0].result.messages_sent / self.entries[0].num_households
        for entry in self.entries[1:]:
            per_household = entry.result.messages_sent / entry.num_households
            if reference == 0:
                return per_household == 0
            if abs(per_household - reference) / reference > tolerance:
                return False
        return True

    def rounds_bounded(self, maximum: int = 60) -> bool:
        return all(entry.result.rounds <= maximum for entry in self.entries)

    def render(self) -> str:
        labels = {
            "fast": "fast path (vectorized)",
            "object": "object path",
            "sharded": f"sharded runtime ({self.shards} shards)",
        }
        path = labels.get(self.path_label, self.path_label)
        return format_table(
            self.rows(),
            title=f"E9 — scalability in the number of customers [{path}]",
        )

    def as_json_payload(self) -> dict[str, object]:
        """Machine-readable perf trajectory (for BENCH_scalability.json)."""
        payload: dict[str, object] = {
            "experiment": "E9_scalability",
            "path": self.path_label,
            "sizes": [entry.num_households for entry in self.entries],
            "entries": self.rows(),
        }
        if self.shards is not None:
            payload["shards"] = self.shards
        return payload


def run_scalability(
    sizes: Sequence[int] = (10, 25, 50, 100, 200),
    seed: int = 0,
    max_reward: float = 60.0,
    beta: float = 2.0,
    fast: bool = False,
    backend: Optional[str] = None,
    shards: Optional[int] = None,
) -> ScalabilityResult:
    """Run the reward-table negotiation at increasing population sizes.

    With ``fast=True`` the vectorized :class:`FastSession` carries the sweep
    (required beyond a few hundred households); ``backend`` overrides the
    boolean with an explicit engine backend name (``"sharded"`` runs the
    parallel runtime with ``shards`` workers).  Outcomes are identical across
    backends at equal seeds, only the wall-clock trajectory differs.
    """
    if not sizes:
        raise ValueError("need at least one population size")
    if backend is None:
        backend = "vectorized" if fast else "object"
    if backend == "sharded" and shards is None:
        shards = default_shard_count()
    overrides: dict[str, object] = {}
    if shards is not None:
        overrides["shards"] = shards
    entries = []
    for size in sizes:
        scenario = synthetic_scenario(
            num_households=size, seed=seed, max_reward=max_reward, beta=beta
        )
        start = time.perf_counter()
        result = api.run(scenario, backend=backend, seed=seed, **overrides)
        elapsed = time.perf_counter() - start
        entries.append(
            ScalabilityEntry(num_households=size, result=result, wall_seconds=elapsed)
        )
    return ScalabilityResult(
        entries=entries,
        fast_path=backend == "vectorized",
        backend=backend,
        shards=shards,
    )


def _speedup_at_shared_max(
    reference: ScalabilityResult, contender: ScalabilityResult
) -> Optional[dict[str, float]]:
    """Wall-clock ratio at the largest population both sweeps cover."""
    contender_by_size = {e.num_households: e for e in contender.entries}
    shared = [
        e.num_households
        for e in reference.entries
        if e.num_households in contender_by_size
    ]
    if not shared:
        return None
    size = max(shared)
    reference_entry = next(e for e in reference.entries if e.num_households == size)
    contender_entry = contender_by_size[size]
    if contender_entry.wall_seconds <= 0:
        return None
    return {
        "num_households": size,
        f"{reference.path_label}_wall_seconds": reference_entry.wall_seconds,
        f"{contender.path_label}_wall_seconds": contender_entry.wall_seconds,
        "speedup": reference_entry.wall_seconds / contender_entry.wall_seconds,
    }


def write_benchmark_json(
    path: Union[str, Path],
    fast_result: ScalabilityResult,
    object_result: Optional[ScalabilityResult] = None,
    seed: int = 0,
    sharded_result: Optional[ScalabilityResult] = None,
) -> Path:
    """Write the measured perf trajectories as a machine-readable JSON artefact.

    The payload carries the fast-path sweep (sizes, wall_seconds, messages,
    peak_reduction_fraction per entry), optionally the object-path and
    sharded-runtime sweeps, and — where two sweeps cover a common size — the
    measured speedup at the largest shared population (``speedup_at_shared_max``
    for object vs fast, ``sharded_speedup_at_shared_max`` for fast vs sharded,
    where a value above 1 means the sharded runtime beat the single-core fast
    path).
    """
    payload: dict[str, object] = {
        "experiment": "E9_scalability",
        "seed": seed,
        "fast_path": fast_result.as_json_payload(),
    }
    if sharded_result is not None:
        payload["sharded_path"] = sharded_result.as_json_payload()
        sharded_speedup = _speedup_at_shared_max(fast_result, sharded_result)
        if sharded_speedup is not None:
            payload["sharded_speedup_at_shared_max"] = sharded_speedup
    if object_result is not None:
        payload["object_path"] = object_result.as_json_payload()
        speedup = _speedup_at_shared_max(object_result, fast_result)
        if speedup is not None:
            payload["speedup_at_shared_max"] = speedup
    destination = Path(path)
    destination.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return destination
