"""Experiment E9 — scalability in the number of Customer Agents.

The paper's framing is explicitly about "a (large) number of Customer
Agents", but the prototype only demonstrates a handful.  This experiment
sweeps the population size and measures how the negotiation behaves as it
grows: rounds to converge, messages exchanged, wall-clock time per run and
the achieved peak reduction.  Message volume should grow linearly in the
number of customers and rounds should stay roughly flat, which is the
property that makes the announcement-based protocol usable at scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.reporting import format_table
from repro.core.results import NegotiationResult
from repro.core.scenario import synthetic_scenario
from repro.core.session import NegotiationSession


@dataclass
class ScalabilityEntry:
    """One population size."""

    num_households: int
    result: NegotiationResult
    wall_seconds: float

    def as_row(self) -> dict[str, float]:
        return {
            "num_households": self.num_households,
            "rounds": self.result.rounds,
            "messages": self.result.messages_sent,
            "messages_per_household": self.result.messages_sent / self.num_households,
            "peak_reduction_fraction": self.result.peak_reduction_fraction,
            "wall_seconds": self.wall_seconds,
        }


@dataclass
class ScalabilityResult:
    """The full population-size sweep."""

    entries: list[ScalabilityEntry]

    def rows(self) -> list[dict[str, float]]:
        return [entry.as_row() for entry in self.entries]

    def messages_scale_linearly(self, tolerance: float = 0.5) -> bool:
        """Messages per household should stay within a band as size grows.

        ``tolerance`` is the allowed relative deviation of the per-household
        message count from the smallest population's value (rounds may differ
        by one or two, so some slack is needed).
        """
        if len(self.entries) < 2:
            return True
        reference = self.entries[0].result.messages_sent / self.entries[0].num_households
        for entry in self.entries[1:]:
            per_household = entry.result.messages_sent / entry.num_households
            if reference == 0:
                return per_household == 0
            if abs(per_household - reference) / reference > tolerance:
                return False
        return True

    def rounds_bounded(self, maximum: int = 60) -> bool:
        return all(entry.result.rounds <= maximum for entry in self.entries)

    def render(self) -> str:
        return format_table(self.rows(), title="E9 — scalability in the number of customers")


def run_scalability(
    sizes: Sequence[int] = (10, 25, 50, 100, 200),
    seed: int = 0,
    max_reward: float = 60.0,
    beta: float = 2.0,
) -> ScalabilityResult:
    """Run the reward-table negotiation at increasing population sizes."""
    if not sizes:
        raise ValueError("need at least one population size")
    entries = []
    for size in sizes:
        scenario = synthetic_scenario(
            num_households=size, seed=seed, max_reward=max_reward, beta=beta
        )
        start = time.perf_counter()
        result = NegotiationSession(scenario, seed=seed).run()
        elapsed = time.perf_counter() - start
        entries.append(
            ScalabilityEntry(num_households=size, result=result, wall_seconds=elapsed)
        )
    return ScalabilityResult(entries=entries)
