"""Campaign benchmark — the 10k-household multi-week planning pipeline.

The ROADMAP's "multi-negotiation campaigns at scale" item measured campaign
wall-clock as dominated by the *planning* layer (per-household preference
modelling in :meth:`~repro.core.planning.DayAheadPlanner.plan`), not by the
negotiations.  This experiment tracks that split: it runs the full
observe → predict → negotiate → apply → account loop through
:func:`repro.api.campaign` and records the planning-phase and
negotiation-phase wall-clock separately, for both the columnar
(:class:`~repro.grid.fleet.HouseholdFleet`) and the scalar (per-household
oracle) planning paths.

:func:`write_campaign_json` emits the machine-readable trajectory
(``benchmarks/BENCH_campaign.json``) that CI replays via
``benchmarks/run_bench.py --check``; the recorded ``planning_speedup`` is
the scalar-versus-columnar planning wall-clock ratio at the benchmark scale.

On top of the 10k eager/scalar oracle pair the sweep now carries the
*zero-materialisation* path: a 10k ``materialise="lazy"`` run (asserted
row-identical to the eager entry at emission) and the 100k-household
``lazy_large`` point — lazy hand-off, a bounded predictor
``history_window`` and no per-round bid retention — each with its
tracemalloc'd peak (``peak_traced_mb``), which ``--check`` guards with a
tolerance band.

The heterogeneous point (:func:`build_hetero_campaign_planner`) runs the
same pipeline on a mixed town — two appliance catalogues, permuted ownership
orderings — that planning buckets into per-signature
:class:`~repro.grid.fleet.HouseholdFleet` kernels, against the scalar
per-household loop every such town fell back to before the bucketed fleet
existed.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.api import EngineConfig, campaign
from repro.core.planning import CampaignResult, DayAheadPlanner
from repro.grid.appliances import (
    Appliance,
    ApplianceCategory,
    ApplianceLibrary,
    _evening_morning_pattern,
    standard_appliance_library,
)
from repro.grid.demand import DemandModel
from repro.grid.household import Household, HouseholdProfile
from repro.grid.weather import WeatherCondition
from repro.runtime.rng import RandomSource

#: Benchmark scale: the ROADMAP's 10k-household two-week campaign.
CAMPAIGN_HOUSEHOLDS = 10_000
CAMPAIGN_DAYS = 14
CAMPAIGN_SEED = 7
CAMPAIGN_WARMUP_DAYS = 2

#: The utility-scale point of the lazy campaign sweep: 100k households, a
#: bounded observation window, no per-round bid retention.  The eager oracle
#: never runs at this size (its per-day object materialisation is exactly
#: what the lazy path removes); equivalence is pinned at 10k and below.
LARGE_CAMPAIGN_HOUSEHOLDS = 100_000
LARGE_CAMPAIGN_WINDOW = 7

#: The million-household point: array-native rounds, lazy hand-off, bounded
#: window, no bid retention.  Only reachable because no layer of the pipeline
#: holds a per-household Python object for the round loop any more.
XLARGE_CAMPAIGN_HOUSEHOLDS = 1_000_000

#: The heterogeneous-town point: same 10k scale, but the population mixes
#: appliance catalogues and ownership orderings so no single
#: :class:`~repro.grid.fleet.HouseholdFleet` can pack it.  Shorter than the
#: homogeneous campaign because its scalar-planning reference (the pre-PR
#: fallback behaviour this point exists to beat) pays the per-household loop
#: on every planned day.
HETERO_CAMPAIGN_DAYS = 7

#: Acceptance floor for the bucketed-fleet planning speedup over the scalar
#: fallback at the heterogeneous benchmark scale.
HETERO_MIN_PLANNING_SPEEDUP = 5.0

#: One cold snap per three-day cycle keeps a steady stream of negotiated days.
CONDITION_CYCLE = (
    WeatherCondition.MILD,
    WeatherCondition.SEVERE_COLD,
    WeatherCondition.COLD,
)


def build_campaign_planner(
    num_households: int, seed: int = CAMPAIGN_SEED, planning: str = "columnar"
) -> DayAheadPlanner:
    """The benchmark's standard planner: generated town, 0.8-quantile capacity."""
    random = RandomSource(seed, "campaign_scale")
    households = [
        Household.generate(f"h{i}", random.spawn(f"h{i}"))
        for i in range(num_households)
    ]
    demand_model = DemandModel(households, random.spawn("demand"))
    capacity = demand_model.normal_capacity_for_target(quantile=0.8)
    return DayAheadPlanner(
        households, capacity, random=random.spawn("planner"), planning=planning
    )


def _retrofit_appliance_library() -> ApplianceLibrary:
    """A second appliance catalogue: district-heating retrofit homes.

    Value-distinct from :func:`standard_appliance_library` (heat pump instead
    of resistive heating, LED lighting, induction cooking), so fleets built
    from it can never share columns with standard-town fleets — the packer
    must bucket.
    """
    return ApplianceLibrary(
        [
            Appliance(
                name="heat_pump",
                category=ApplianceCategory.SPACE_HEATING,
                rated_power_kw=3.0,
                daily_energy_kwh=24.0,
                usage_pattern=_evening_morning_pattern(1.4, 0.8, 1.5, 0.9),
                flexibility=0.6,
            ),
            Appliance(
                name="heat_pump_water",
                category=ApplianceCategory.WATER_HEATING,
                rated_power_kw=1.2,
                daily_energy_kwh=6.0,
                usage_pattern=_evening_morning_pattern(1.9, 0.5, 1.5, 0.4),
                flexibility=0.7,
            ),
            Appliance(
                name="induction_hob",
                category=ApplianceCategory.COOKING,
                rated_power_kw=5.5,
                daily_energy_kwh=2.2,
                usage_pattern=_evening_morning_pattern(0.9, 0.4, 2.4, 0.1),
                flexibility=0.15,
                per_person=True,
            ),
            Appliance(
                name="led_lighting",
                category=ApplianceCategory.LIGHTING,
                rated_power_kw=0.15,
                daily_energy_kwh=0.8,
                usage_pattern=_evening_morning_pattern(1.2, 0.3, 2.3, 0.4),
                flexibility=0.3,
                per_person=True,
            ),
        ]
    )


def build_hetero_campaign_planner(
    num_households: int, seed: int = CAMPAIGN_SEED, planning: str = "columnar"
) -> DayAheadPlanner:
    """A deliberately mixed town no single :class:`HouseholdFleet` accepts.

    Three interleaved household kinds: standard-catalogue homes, homes whose
    ownership dict lists appliances in reversed (out-of-library) order, and
    district-heating retrofit homes on a second catalogue.  Pre-PR any one of
    these mixes forced the whole town onto the scalar per-household planning
    loop; the bucketed fleet packs them into three signature buckets.
    """
    random = RandomSource(seed, "campaign_hetero")
    standard = standard_appliance_library()
    retrofit = _retrofit_appliance_library()
    households = []
    for i in range(num_households):
        kind = i % 3
        rng = random.spawn(f"h{i}")
        if kind == 0:
            households.append(Household.generate(f"h{i}", rng, standard))
        elif kind == 1:
            base = Household.generate(f"h{i}", rng, standard).profile
            permuted = HouseholdProfile(
                household_id=base.household_id,
                size=base.size,
                ownership=dict(reversed(list(base.ownership.items()))),
                comfort_weight=base.comfort_weight,
                flexibility_scale=base.flexibility_scale,
            )
            households.append(Household(permuted, standard))
        else:
            households.append(Household.generate(f"h{i}", rng, retrofit))
    demand_model = DemandModel(households, random.spawn("demand"))
    capacity = demand_model.normal_capacity_for_target(quantile=0.8)
    return DayAheadPlanner(
        households, capacity, random=random.spawn("planner"), planning=planning
    )


#: Registered town builders: ``run_campaign_bench(town=...)`` and the
#: ``--check`` replay both resolve through this table.
TOWN_BUILDERS = {
    "standard": build_campaign_planner,
    "mixed": build_hetero_campaign_planner,
}


@dataclass
class CampaignBenchEntry:
    """One measured campaign run."""

    num_households: int
    num_days: int
    planning: str
    backend: str
    result: CampaignResult
    wall_seconds: float
    materialise: str = "eager"
    history_window: Optional[int] = None
    rounds: str = "object"
    #: Which registered town the planner was built from ("standard" or the
    #: heterogeneous "mixed" town).
    town: str = "standard"
    #: tracemalloc'd peak of the campaign run (MB of live Python/numpy
    #: allocations), measured only when the stage asks for it.
    peak_traced_mb: Optional[float] = None

    def as_row(self) -> dict[str, object]:
        result = self.result
        row: dict[str, object] = {
            "num_households": self.num_households,
            "num_days": self.num_days,
            "town": self.town,
            "planning": self.planning,
            "materialise": self.materialise,
            "history_window": self.history_window,
            "rounds": self.rounds,
            "rounds_modes": sorted(
                {
                    str(day.metadata["rounds_mode"])
                    for day in result.days
                    if "rounds_mode" in day.metadata
                }
            ),
            "kernel_cache": {
                counter: sum(
                    int(day.metadata["kernel_cache"][counter])
                    for day in result.days
                    if "kernel_cache" in day.metadata
                )
                for counter in ("hits", "misses")
            },
            "backend": self.backend,
            "wall_seconds": self.wall_seconds,
            "planning_seconds": result.planning_seconds,
            "negotiation_seconds": result.negotiation_seconds,
            "days_negotiated": result.days_negotiated,
            "negotiated_days": [day.day_index for day in result.days if day.negotiated],
            "total_reward_paid": result.total_reward_paid,
            "total_net_benefit": result.total_net_benefit,
            "backends": [backend or "-" for backend in result.backends],
        }
        if self.peak_traced_mb is not None:
            row["peak_traced_mb"] = self.peak_traced_mb
        return row


def run_campaign_bench(
    num_households: int = CAMPAIGN_HOUSEHOLDS,
    num_days: int = CAMPAIGN_DAYS,
    seed: int = CAMPAIGN_SEED,
    backend: str = "auto",
    planning: str = "columnar",
    materialise: str = "eager",
    history_window: Optional[int] = None,
    rounds: str = "object",
    retain_logs: bool = True,
    track_memory: bool = False,
    town: str = "standard",
) -> CampaignBenchEntry:
    """Run one campaign at the benchmark configuration and time it.

    ``track_memory=True`` wraps the campaign (not the one-off planner/town
    construction) in tracemalloc and records the peak of live allocations —
    the number the lazy path is designed to bound.  ``town`` selects the
    planner builder from :data:`TOWN_BUILDERS`.
    """
    planner = TOWN_BUILDERS[town](num_households, seed, planning=planning)
    config = EngineConfig(
        planning=planning,
        materialise=materialise,
        history_window=history_window,
        rounds=rounds,
        retain_message_log=retain_logs,
    )
    peak_traced_mb: Optional[float] = None
    if track_memory:
        tracemalloc.start()
    start = time.perf_counter()
    try:
        result = campaign(
            planner,
            num_days,
            conditions=CONDITION_CYCLE,
            backend=backend,
            config=config,
            warmup_days=CAMPAIGN_WARMUP_DAYS,
            seed=seed,
        )
        wall = time.perf_counter() - start
        if track_memory:
            __, peak = tracemalloc.get_traced_memory()
            peak_traced_mb = peak / 1e6
    finally:
        if track_memory:
            tracemalloc.stop()
    return CampaignBenchEntry(
        num_households=num_households,
        num_days=num_days,
        planning=planning,
        backend=backend,
        result=result,
        wall_seconds=wall,
        materialise=materialise,
        history_window=history_window,
        rounds=rounds,
        town=town,
        peak_traced_mb=peak_traced_mb,
    )


def render_entry(entry: CampaignBenchEntry) -> str:
    row = entry.as_row()
    lines = [
        f"campaign — {row['num_households']} households, {row['num_days']} days "
        f"(town={row['town']}, backend={row['backend']}, planning={row['planning']}, "
        f"materialise={row['materialise']}, history_window={row['history_window']}, "
        f"rounds={row['rounds']})",
        f"wall_seconds: {row['wall_seconds']:.2f}",
        f"planning_seconds: {row['planning_seconds']:.2f}",
        f"negotiation_seconds: {row['negotiation_seconds']:.2f}",
        f"days_negotiated: {row['days_negotiated']}",
        f"total_reward_paid: {row['total_reward_paid']:.2f}",
        f"total_net_benefit: {row['total_net_benefit']:.2f}",
    ]
    if entry.peak_traced_mb is not None:
        lines.append(f"peak_traced_mb: {entry.peak_traced_mb:.1f}")
    for day, backend in zip(entry.result.days, row["backends"]):
        lines.append(
            f"  day {day.day_index:>2}: negotiated={day.negotiated} backend={backend}"
        )
    return "\n".join(lines)


def write_campaign_json(
    path: Path,
    columnar: CampaignBenchEntry,
    scalar: Optional[CampaignBenchEntry] = None,
    seed: int = CAMPAIGN_SEED,
    lazy: Optional[CampaignBenchEntry] = None,
    lazy_large: Optional[CampaignBenchEntry] = None,
    array: Optional[CampaignBenchEntry] = None,
    xlarge: Optional[CampaignBenchEntry] = None,
    hetero: Optional[CampaignBenchEntry] = None,
    hetero_scalar: Optional[CampaignBenchEntry] = None,
) -> Path:
    """Write the machine-readable campaign trajectory.

    ``planning_speedup`` — the scalar/columnar planning-phase wall-clock
    ratio — is only present when the scalar reference run was measured;
    ``lazy`` / ``lazy_large`` carry the zero-materialisation sweep (10k and
    the utility-scale point) when those stages ran; ``array`` is the 10k
    array-round run (asserted row-identical to ``columnar`` before emission)
    and ``xlarge`` the million-household array-round point.  ``hetero`` is
    the mixed-town bucketed-fleet run and ``hetero_scalar`` its scalar
    fallback reference (the pre-PR behaviour); ``hetero_planning_speedup``
    records their planning-phase ratio.
    """
    payload: dict[str, object] = {
        "experiment": "campaign_scale",
        "seed": seed,
        "columnar": columnar.as_row(),
    }
    if scalar is not None:
        payload["scalar_planning"] = scalar.as_row()
        if columnar.result.planning_seconds > 0:
            payload["planning_speedup"] = (
                scalar.result.planning_seconds / columnar.result.planning_seconds
            )
    if lazy is not None:
        payload["lazy"] = lazy.as_row()
    if lazy_large is not None:
        payload["lazy_large"] = lazy_large.as_row()
    if array is not None:
        payload["array"] = array.as_row()
    if xlarge is not None:
        payload["xlarge"] = xlarge.as_row()
    if hetero is not None:
        payload["hetero"] = hetero.as_row()
        if hetero_scalar is not None:
            payload["hetero_scalar_planning"] = hetero_scalar.as_row()
            if hetero.result.planning_seconds > 0:
                payload["hetero_planning_speedup"] = (
                    hetero_scalar.result.planning_seconds
                    / hetero.result.planning_seconds
                )
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
