"""Campaign benchmark — the 10k-household multi-week planning pipeline.

The ROADMAP's "multi-negotiation campaigns at scale" item measured campaign
wall-clock as dominated by the *planning* layer (per-household preference
modelling in :meth:`~repro.core.planning.DayAheadPlanner.plan`), not by the
negotiations.  This experiment tracks that split: it runs the full
observe → predict → negotiate → apply → account loop through
:func:`repro.api.campaign` and records the planning-phase and
negotiation-phase wall-clock separately, for both the columnar
(:class:`~repro.grid.fleet.HouseholdFleet`) and the scalar (per-household
oracle) planning paths.

:func:`write_campaign_json` emits the machine-readable trajectory
(``benchmarks/BENCH_campaign.json``) that CI replays via
``benchmarks/run_bench.py --check``; the recorded ``planning_speedup`` is
the scalar-versus-columnar planning wall-clock ratio at the benchmark scale.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.api import EngineConfig, campaign
from repro.core.planning import CampaignResult, DayAheadPlanner
from repro.grid.demand import DemandModel
from repro.grid.household import Household
from repro.grid.weather import WeatherCondition
from repro.runtime.rng import RandomSource

#: Benchmark scale: the ROADMAP's 10k-household two-week campaign.
CAMPAIGN_HOUSEHOLDS = 10_000
CAMPAIGN_DAYS = 14
CAMPAIGN_SEED = 7
CAMPAIGN_WARMUP_DAYS = 2

#: One cold snap per three-day cycle keeps a steady stream of negotiated days.
CONDITION_CYCLE = (
    WeatherCondition.MILD,
    WeatherCondition.SEVERE_COLD,
    WeatherCondition.COLD,
)


def build_campaign_planner(
    num_households: int, seed: int = CAMPAIGN_SEED, planning: str = "columnar"
) -> DayAheadPlanner:
    """The benchmark's standard planner: generated town, 0.8-quantile capacity."""
    random = RandomSource(seed, "campaign_scale")
    households = [
        Household.generate(f"h{i}", random.spawn(f"h{i}"))
        for i in range(num_households)
    ]
    demand_model = DemandModel(households, random.spawn("demand"))
    capacity = demand_model.normal_capacity_for_target(quantile=0.8)
    return DayAheadPlanner(
        households, capacity, random=random.spawn("planner"), planning=planning
    )


@dataclass
class CampaignBenchEntry:
    """One measured campaign run."""

    num_households: int
    num_days: int
    planning: str
    backend: str
    result: CampaignResult
    wall_seconds: float

    def as_row(self) -> dict[str, object]:
        result = self.result
        return {
            "num_households": self.num_households,
            "num_days": self.num_days,
            "planning": self.planning,
            "backend": self.backend,
            "wall_seconds": self.wall_seconds,
            "planning_seconds": result.planning_seconds,
            "negotiation_seconds": result.negotiation_seconds,
            "days_negotiated": result.days_negotiated,
            "negotiated_days": [day.day_index for day in result.days if day.negotiated],
            "total_reward_paid": result.total_reward_paid,
            "total_net_benefit": result.total_net_benefit,
            "backends": [backend or "-" for backend in result.backends],
        }


def run_campaign_bench(
    num_households: int = CAMPAIGN_HOUSEHOLDS,
    num_days: int = CAMPAIGN_DAYS,
    seed: int = CAMPAIGN_SEED,
    backend: str = "auto",
    planning: str = "columnar",
) -> CampaignBenchEntry:
    """Run one campaign at the benchmark configuration and time it."""
    planner = build_campaign_planner(num_households, seed, planning=planning)
    start = time.perf_counter()
    result = campaign(
        planner,
        num_days,
        conditions=CONDITION_CYCLE,
        backend=backend,
        config=EngineConfig(planning=planning),
        warmup_days=CAMPAIGN_WARMUP_DAYS,
        seed=seed,
    )
    wall = time.perf_counter() - start
    return CampaignBenchEntry(
        num_households=num_households,
        num_days=num_days,
        planning=planning,
        backend=backend,
        result=result,
        wall_seconds=wall,
    )


def render_entry(entry: CampaignBenchEntry) -> str:
    row = entry.as_row()
    lines = [
        f"campaign — {row['num_households']} households, {row['num_days']} days "
        f"(backend={row['backend']}, planning={row['planning']})",
        f"wall_seconds: {row['wall_seconds']:.2f}",
        f"planning_seconds: {row['planning_seconds']:.2f}",
        f"negotiation_seconds: {row['negotiation_seconds']:.2f}",
        f"days_negotiated: {row['days_negotiated']}",
        f"total_reward_paid: {row['total_reward_paid']:.2f}",
        f"total_net_benefit: {row['total_net_benefit']:.2f}",
    ]
    for day, backend in zip(entry.result.days, row["backends"]):
        lines.append(
            f"  day {day.day_index:>2}: negotiated={day.negotiated} backend={backend}"
        )
    return "\n".join(lines)


def write_campaign_json(
    path: Path,
    columnar: CampaignBenchEntry,
    scalar: Optional[CampaignBenchEntry] = None,
    seed: int = CAMPAIGN_SEED,
) -> Path:
    """Write the machine-readable campaign trajectory.

    ``planning_speedup`` — the scalar/columnar planning-phase wall-clock
    ratio — is only present when the scalar reference run was measured.
    """
    payload: dict[str, object] = {
        "experiment": "campaign_scale",
        "seed": seed,
        "columnar": columnar.as_row(),
    }
    if scalar is not None:
        payload["scalar_planning"] = scalar.as_row()
        if columnar.result.planning_seconds > 0:
            payload["planning_speedup"] = (
                scalar.result.planning_seconds / columnar.result.planning_seconds
            )
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
