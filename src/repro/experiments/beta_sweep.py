"""Experiment E7 — the effect of β, and dynamic β (Section 7 future work).

The prototype keeps β constant; the paper explicitly asks what happens when β
is varied and whether adapting it "on the basis of experience" helps.  This
experiment sweeps constant β values over the calibrated prototype scenario and
adds the adaptive controller, reporting rounds to convergence, the total
reward expenditure and the final overuse for each setting — the speed/cost
trade-off β governs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.core.results import NegotiationResult
from repro.core.scenario import paper_prototype_scenario
from repro import api
from repro.negotiation.strategy import AdaptiveBeta, BetaController, ConstantBeta


@dataclass
class BetaSweepEntry:
    """Result of one β configuration."""

    label: str
    beta: Optional[float]
    result: NegotiationResult

    def as_row(self) -> dict[str, object]:
        return {
            "beta": self.label,
            "rounds": self.result.rounds,
            "final_overuse": self.result.final_overuse,
            "peak_reduction_fraction": self.result.peak_reduction_fraction,
            "total_reward_paid": self.result.total_reward_paid,
            "termination": self.result.termination_reason.value,
        }


@dataclass
class BetaSweepResult:
    """The full sweep."""

    entries: list[BetaSweepEntry]

    def rows(self) -> list[dict[str, object]]:
        return [entry.as_row() for entry in self.entries]

    def entry(self, label: str) -> BetaSweepEntry:
        for entry in self.entries:
            if entry.label == label:
                return entry
        raise KeyError(f"no sweep entry labelled {label!r}")

    def constant_entries(self) -> list[BetaSweepEntry]:
        return [e for e in self.entries if e.beta is not None]

    def successful_entries(self) -> list[BetaSweepEntry]:
        """Constant-β entries that actually reached the overuse target.

        A very small β can terminate early with ``reward_saturated`` (its
        per-round increments fall below the ε=1 threshold before the peak is
        solved); those runs are excluded from speed comparisons.
        """
        from repro.negotiation.termination import TerminationReason

        return [
            e
            for e in self.constant_entries()
            if e.result.termination_reason is TerminationReason.OVERUSE_ACCEPTABLE
        ]

    def rounds_nonincreasing_in_beta(self) -> bool:
        """Among successful runs, higher β never needs *more* rounds to converge."""
        ordered = sorted(self.successful_entries(), key=lambda e: e.beta)
        rounds = [e.result.rounds for e in ordered]
        return all(b <= a for a, b in zip(rounds, rounds[1:]))

    def render(self) -> str:
        return format_table(self.rows(), title="E7 — beta sweep (speed vs reward cost)")


def run_beta_sweep(
    betas: Sequence[float] = (0.5, 1.0, 2.0, 3.0, 4.0),
    include_adaptive: bool = True,
    seed: int = 0,
) -> BetaSweepResult:
    """Sweep constant β values (plus the adaptive controller) on the prototype scenario."""
    if not betas:
        raise ValueError("need at least one beta value")
    entries: list[BetaSweepEntry] = []
    for beta in betas:
        scenario = paper_prototype_scenario(beta=beta)
        result = api.run(scenario, seed=seed)
        entries.append(BetaSweepEntry(label=f"{beta:.2f}", beta=beta, result=result))
    if include_adaptive:
        controller: BetaController = AdaptiveBeta(initial_beta=1.0)
        scenario = paper_prototype_scenario(beta_controller=controller)
        result = api.run(scenario, seed=seed)
        entries.append(BetaSweepEntry(label="adaptive", beta=None, result=result))
    return BetaSweepResult(entries=entries)
