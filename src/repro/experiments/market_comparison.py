"""Experiment E8 — negotiation versus the computational-market baseline.

Section 7 names computational markets (Ygge & Akkermans) as an alternative
mechanism being explored for the same problem.  This experiment runs the
reward-table negotiation and the equilibrium market on the *same* customer
population (same predicted uses, same private requirement tables) and
compares: how much of the needed reduction each mechanism achieves, how much
the utility pays, how many rounds / price iterations it takes, and how much
surplus customers end up with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.reporting import format_table
from repro.core.results import NegotiationResult
from repro.core.scenario import Scenario, paper_prototype_scenario, synthetic_scenario
from repro import api
from repro.market.equilibrium import EquilibriumMarket, MarketOutcome


@dataclass
class MarketComparisonResult:
    """Negotiation and market outcomes on the same population."""

    negotiation: NegotiationResult
    market: MarketOutcome
    needed_reduction: float

    def negotiation_reduction(self) -> float:
        """Overuse removed by the negotiation (absolute units)."""
        return max(0.0, self.negotiation.overuse_reduction)

    def rows(self) -> list[dict[str, object]]:
        negotiation_reduction = self.negotiation_reduction()
        return [
            {
                "mechanism": "reward_table_negotiation",
                "reduction_achieved": negotiation_reduction,
                "needed_reduction": self.needed_reduction,
                "fraction_of_needed": (
                    min(1.0, negotiation_reduction / self.needed_reduction)
                    if self.needed_reduction > 0
                    else 1.0
                ),
                "utility_payment": self.negotiation.total_reward_paid,
                "rounds_or_iterations": self.negotiation.rounds,
                "customer_surplus": self.negotiation.total_customer_surplus,
            },
            {
                "mechanism": "equilibrium_market",
                "reduction_achieved": self.market.total_reduction,
                "needed_reduction": self.needed_reduction,
                "fraction_of_needed": self.market.reduction_achieved_fraction,
                "utility_payment": self.market.total_payment,
                "rounds_or_iterations": self.market.iterations,
                "customer_surplus": self.market.total_customer_surplus,
            },
        ]

    def both_remove_needed_reduction(self, tolerance: float = 0.05) -> bool:
        """Whether both mechanisms deliver (almost) the needed reduction."""
        if self.needed_reduction <= 0:
            return True
        rows = self.rows()
        return all(row["fraction_of_needed"] >= 1.0 - tolerance for row in rows)

    def render(self) -> str:
        return format_table(self.rows(), title="E8 — negotiation vs computational market")


def run_market_comparison(
    use_paper_scenario: bool = True,
    num_households: int = 40,
    seed: int = 0,
    reservation_price: Optional[float] = None,
) -> MarketComparisonResult:
    """Run both mechanisms on the same population and collect the comparison."""
    scenario: Scenario
    if use_paper_scenario:
        scenario = paper_prototype_scenario()
    else:
        scenario = synthetic_scenario(num_households=num_households, seed=seed)
    negotiation = api.run(scenario, seed=seed)
    market = EquilibriumMarket.from_population(
        scenario.population, reservation_price=reservation_price
    ).clear()
    needed = max(
        0.0, scenario.population.initial_overuse - scenario.population.max_allowed_overuse
    )
    return MarketComparisonResult(
        negotiation=negotiation, market=market, needed_reduction=needed
    )
