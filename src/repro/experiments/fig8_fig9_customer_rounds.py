"""Experiment E4 — Figures 8 and 9: the Customer Agent across rounds.

Figures 8 and 9 show one Customer Agent's view of the prototype negotiation:
its private cut-down-reward table (at least 10 for a cut-down of 0.3, at
least 21 for 0.4, ...), and its choices — the highest acceptable cut-down —
per round: 0.2 in the first round, 0.4 in the second and third rounds.

This experiment runs the same calibrated prototype scenario as E2/E3 and
reports the Figure-8 customer's requirement table, the per-round acceptable
cut-down sets and the chosen bids, against the paper's reference behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_key_values, format_table
from repro.core.results import NegotiationResult
from repro.core.scenario import paper_prototype_scenario
from repro import api
from repro.negotiation.messages import RewardTableAnnouncement
from repro.negotiation.reward_table import CutdownRewardRequirements

#: The customer shown in Figures 8 and 9 is customer ``c000`` of the
#: calibrated population (requirement scale 1.0).
FIGURE_CUSTOMER = "c000"

#: Reference behaviour reported in the paper.
PAPER_REFERENCE = {
    "required_reward_at_0.3": 10.0,
    "required_reward_at_0.4": 21.0,
    "round1_bid": 0.2,
    "round2_bid": 0.4,
    "round3_bid": 0.4,
}


@dataclass
class CustomerRoundsResult:
    """The Figure 8/9 customer's view of the prototype negotiation."""

    result: NegotiationResult
    requirements: CutdownRewardRequirements

    def requirement_rows(self) -> list[dict[str, float]]:
        """The customer's private cut-down-reward table (Figure 8, upper part)."""
        return [
            {"cutdown": cutdown, "required_reward": self.requirements.requirements[cutdown]}
            for cutdown in self.requirements.cutdowns()
        ]

    def rows(self) -> list[dict[str, object]]:
        """Per round: offered reward at key cut-downs, acceptable set, chosen bid."""
        bids = self.result.customer_bid_trajectory(FIGURE_CUSTOMER)
        rows = []
        for index, record in enumerate(self.result.record.rounds):
            announcement = record.announcement
            if not isinstance(announcement, RewardTableAnnouncement):
                continue
            table = announcement.table
            acceptable = self.requirements.acceptable_cutdowns(table)
            rows.append(
                {
                    "round": index + 1,
                    "offered_at_0.3": table.reward_for(0.3),
                    "offered_at_0.4": table.reward_for(0.4),
                    "highest_acceptable": max(acceptable) if acceptable else 0.0,
                    "chosen_bid": bids[index] if index < len(bids) else 0.0,
                }
            )
        return rows

    def measured(self) -> dict[str, float]:
        bids = self.result.customer_bid_trajectory(FIGURE_CUSTOMER)
        measured = {
            "required_reward_at_0.3": self.requirements.required_reward_for(0.3),
            "required_reward_at_0.4": self.requirements.required_reward_for(0.4),
            "round1_bid": bids[0] if len(bids) > 0 else 0.0,
            "round2_bid": bids[1] if len(bids) > 1 else 0.0,
            "round3_bid": bids[2] if len(bids) > 2 else (bids[-1] if bids else 0.0),
        }
        return measured

    def comparison_rows(self) -> list[dict[str, object]]:
        measured = self.measured()
        return [
            {
                "quantity": key,
                "paper": paper_value,
                "measured": measured[key],
                "match": abs(measured[key] - paper_value) < 1e-9,
            }
            for key, paper_value in PAPER_REFERENCE.items()
        ]

    def outcome_summary(self) -> dict[str, float]:
        outcome = self.result.customer_outcomes[FIGURE_CUSTOMER]
        return {
            "final_bid_cutdown": outcome.final_bid_cutdown,
            "awarded": float(outcome.awarded),
            "committed_cutdown": outcome.committed_cutdown,
            "reward": outcome.reward,
            "surplus": outcome.surplus,
        }

    def render(self) -> str:
        requirement_table = format_table(
            self.requirement_rows(), title="Figure 8 — customer requirement table"
        )
        rounds_table = format_table(
            self.rows(), title="Figure 8/9 — customer per round"
        )
        comparison = format_table(
            self.comparison_rows(), title="Paper vs measured (Figures 8 and 9)"
        )
        outcome = format_key_values(self.outcome_summary())
        return "\n\n".join([requirement_table, rounds_table, comparison, outcome])


def run_customer_rounds(seed: int = 0) -> CustomerRoundsResult:
    """Run the calibrated prototype scenario and collect the Figure 8/9 view."""
    scenario = paper_prototype_scenario()
    requirements = scenario.population.spec(FIGURE_CUSTOMER).requirements
    result = api.run(scenario, seed=seed)
    return CustomerRoundsResult(result=result, requirements=requirements)
