"""Experiment harness: one module per reproduced figure / evaluation question.

Each experiment module exposes a ``run_*`` function returning a structured
result object (with ``rows()`` for tabular output and ``render()`` for a
plain-text report) so that the corresponding benchmark in ``benchmarks/`` and
the examples can share the same code path.  The mapping between experiments,
paper artefacts and modules is documented in ``DESIGN.md`` (Section 4) and the
measured-versus-paper values are recorded in ``EXPERIMENTS.md``.
"""

from repro.experiments.registry import EXPERIMENTS, ExperimentInfo, get_experiment

__all__ = ["EXPERIMENTS", "ExperimentInfo", "get_experiment"]
