"""Experiment E1 — Figure 1: the daily demand curve with an expensive peak.

Figure 1 of the paper is a qualitative sketch: electricity demand over a day,
a horizontal level up to which production is cheap ("normal production
costs"), and a peak that exceeds it ("expensive production costs").  This
experiment regenerates the figure quantitatively from the grid substrate: a
synthetic household population on a cold day produces an aggregate demand
profile whose evening peak exceeds the normal-cost capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.agents.population import CustomerPopulation, PopulationConfig
from repro.analysis.plotting import ascii_line_chart
from repro.analysis.reporting import format_key_values, format_table
from repro.grid.demand import DemandCurve, DemandModel
from repro.grid.production import ProductionModel
from repro.grid.weather import WeatherCondition, WeatherSample
from repro.runtime.rng import RandomSource


@dataclass
class DemandCurveResult:
    """The regenerated Figure 1."""

    curve: DemandCurve
    num_households: int
    weather: WeatherSample
    expensive_energy_kwh: float
    expensive_cost: float
    peak_hour: float

    def rows(self) -> list[dict[str, float]]:
        """One row per slot: demand, normal capacity, overuse (the figure's data)."""
        return self.curve.as_rows()

    def summary(self) -> dict[str, float | bool]:
        return {
            "num_households": self.num_households,
            "temperature_c": self.weather.temperature_c,
            "peak_demand_kw": self.curve.peak_demand,
            "normal_capacity_kw": self.curve.normal_capacity,
            "peak_overuse_kw": self.curve.peak_overuse,
            "relative_overuse": self.curve.relative_overuse,
            "has_peak": self.curve.has_peak,
            "peak_hour": self.peak_hour,
            "expensive_energy_kwh": self.expensive_energy_kwh,
            "expensive_cost": self.expensive_cost,
        }

    def render(self) -> str:
        chart = ascii_line_chart(
            list(self.curve.demand),
            title="Figure 1 — aggregate demand over the day (kW); '-' = normal capacity",
            threshold=self.curve.normal_capacity,
            height=14,
        )
        summary = format_key_values(self.summary())
        table = format_table(self.rows()[:24], title="Per-slot demand")
        return "\n\n".join([chart, summary, table])


def run_demand_curve(
    num_households: int = 50,
    seed: int = 0,
    cold_snap: bool = True,
    capacity_quantile: float = 0.75,
) -> DemandCurveResult:
    """Regenerate Figure 1 from a synthetic household population."""
    random = RandomSource(seed, "fig1")
    weather = (
        WeatherSample(temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD)
        if cold_snap
        else WeatherSample(temperature_c=10.0, condition=WeatherCondition.MILD)
    )
    population = CustomerPopulation.synthetic(
        PopulationConfig(num_households=num_households, seed=seed),
        weather=weather,
        capacity_quantile=capacity_quantile,
    )
    demand_model = DemandModel(
        population.households, random.spawn("demand"), behavioural_noise=0.05
    )
    realised = demand_model.realise(weather)
    curve = realised.curve(population.normal_use)
    production = ProductionModel.two_tier(
        normal_capacity_kw=population.normal_use,
        peak_capacity_kw=max(curve.peak_overuse * 2.0, 1.0),
    )
    return DemandCurveResult(
        curve=curve,
        num_households=num_households,
        weather=weather,
        expensive_energy_kwh=curve.expensive_energy(),
        expensive_cost=production.expensive_cost_of_profile(curve.demand),
        peak_hour=curve.demand.peak_slot().start_hour,
    )
