"""Experiment E5 — dynamics of the logistic reward-update rule (Section 6).

The prototype escalates rewards with::

    new_reward = reward + beta * overuse * (1 - reward / max_reward) * reward

This experiment sweeps β, the overuse level and the starting reward and
verifies/quantifies the properties the paper ascribes to the rule: rewards
increase monotonically, never exceed ``max_reward``, rise faster when the
overuse is higher, and the per-round increment shrinks as the reward
approaches the maximum (which triggers the ``increment <= 1`` termination).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.reporting import format_table
from repro.negotiation.formulas import new_reward


@dataclass
class RewardTrajectory:
    """One simulated escalation sequence at fixed β and overuse."""

    beta: float
    overuse: float
    max_reward: float
    initial_reward: float
    rewards: list[float]

    @property
    def final_reward(self) -> float:
        return self.rewards[-1]

    @property
    def rounds_to_saturation(self) -> int:
        """Rounds until the increment drops to at most 1 (the prototype's stop)."""
        for index in range(1, len(self.rewards)):
            if self.rewards[index] - self.rewards[index - 1] <= 1.0:
                return index
        return len(self.rewards)

    @property
    def is_monotone(self) -> bool:
        return all(b >= a for a, b in zip(self.rewards, self.rewards[1:]))

    @property
    def is_bounded(self) -> bool:
        return all(r <= self.max_reward + 1e-9 for r in self.rewards)

    @property
    def increments(self) -> list[float]:
        return [b - a for a, b in zip(self.rewards, self.rewards[1:])]


@dataclass
class RewardDynamicsResult:
    """The full parameter sweep."""

    trajectories: list[RewardTrajectory]

    def rows(self) -> list[dict[str, float]]:
        return [
            {
                "beta": t.beta,
                "overuse": t.overuse,
                "initial_reward": t.initial_reward,
                "final_reward": t.final_reward,
                "rounds_to_saturation": t.rounds_to_saturation,
                "monotone": t.is_monotone,
                "bounded": t.is_bounded,
            }
            for t in self.trajectories
        ]

    def all_monotone(self) -> bool:
        return all(t.is_monotone for t in self.trajectories)

    def all_bounded(self) -> bool:
        return all(t.is_bounded for t in self.trajectories)

    def saturation_speeds_up_with_beta(self) -> bool:
        """Higher β (same overuse, start) should not converge more slowly."""
        by_key: dict[tuple[float, float], list[RewardTrajectory]] = {}
        for trajectory in self.trajectories:
            by_key.setdefault((trajectory.overuse, trajectory.initial_reward), []).append(
                trajectory
            )
        for group in by_key.values():
            ordered = sorted(group, key=lambda t: t.beta)
            finals = [t.final_reward for t in ordered]
            if any(b < a - 1e-9 for a, b in zip(finals, finals[1:])):
                return False
        return True

    def render(self) -> str:
        return format_table(self.rows(), title="E5 — logistic reward-update dynamics")


def run_reward_dynamics(
    betas: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    overuses: Sequence[float] = (0.1, 0.35, 0.6),
    initial_rewards: Sequence[float] = (5.0, 17.0),
    max_reward: float = 30.0,
    rounds: int = 12,
) -> RewardDynamicsResult:
    """Sweep β × overuse × initial reward and record the escalation sequences."""
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    trajectories = []
    for beta in betas:
        for overuse in overuses:
            for initial in initial_rewards:
                rewards = [initial]
                for __ in range(rounds):
                    rewards.append(new_reward(rewards[-1], beta, overuse, max_reward))
                trajectories.append(
                    RewardTrajectory(
                        beta=beta,
                        overuse=overuse,
                        max_reward=max_reward,
                        initial_reward=initial,
                        rewards=rewards,
                    )
                )
    return RewardDynamicsResult(trajectories=trajectories)
