"""Ablation experiments for the design choices DESIGN.md calls out.

The paper's Figures 3 and 5 make several strategy slots explicit without
fixing them: the Utility Agent's *bid acceptance strategy*, its *announcement
determination* method, and the Customer Agent's *bid selection* policy.  The
prototype picks one option for each; these ablations quantify what the other
options would have changed on the same populations.

* **A1 — bid acceptance**: accept-all (the prototype) vs. selective
  acceptance (accept only enough bids to cover the overuse).
* **A2 — customer bidding policy**: highest-acceptable-cut-down (the
  prototype, Figures 8/9) vs. expected-gain maximisation.
* **A3 — announcement determination**: generate-and-select vs. statistical
  optimisation of the opening reward table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.reporting import format_table
from repro.core.results import NegotiationResult
from repro.core.scenario import Scenario, paper_prototype_scenario, synthetic_scenario
from repro import api
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.reward_table import RewardTable
from repro.negotiation.strategy import (
    AcceptAllBids,
    ConstantBeta,
    ExpectedGainBidding,
    GenerateAndSelectAnnouncements,
    HighestAcceptableCutdownBidding,
    SelectiveBidAcceptance,
    StatisticalAnnouncementOptimisation,
)


@dataclass
class AblationEntry:
    """One variant of one ablation."""

    ablation: str
    variant: str
    result: NegotiationResult

    def as_row(self) -> dict[str, object]:
        return {
            "ablation": self.ablation,
            "variant": self.variant,
            "rounds": self.result.rounds,
            "final_overuse": self.result.final_overuse,
            "peak_reduction_fraction": self.result.peak_reduction_fraction,
            "total_reward_paid": self.result.total_reward_paid,
            "participation": self.result.participation_rate,
            "customer_surplus": self.result.total_customer_surplus,
        }


@dataclass
class AblationResult:
    """All ablation runs."""

    entries: list[AblationEntry]

    def rows(self) -> list[dict[str, object]]:
        return [entry.as_row() for entry in self.entries]

    def entry(self, ablation: str, variant: str) -> AblationEntry:
        for candidate in self.entries:
            if candidate.ablation == ablation and candidate.variant == variant:
                return candidate
        raise KeyError(f"no ablation entry for {ablation!r}/{variant!r}")

    def render(self) -> str:
        return format_table(self.rows(), title="Ablations — strategy-slot variants")


def _paper_scenario_with_method(method: RewardTablesMethod) -> Scenario:
    base = paper_prototype_scenario()
    return Scenario(
        name=f"ablation_{method.name}",
        population=base.population,
        method=method,
        description=base.description,
    )


def _flexible_paper_population():
    """The prototype population made uniformly flexible.

    With every customer at requirement scale 0.8 the very first announcement
    already attracts more cut-down than the overuse requires, which is the
    situation in which the bid-acceptance strategy actually matters (under
    the calibrated population every bid is needed, so accept-all and
    selective acceptance coincide).
    """
    from repro.agents.population import CustomerPopulation
    from repro.core.scenario import (
        PAPER_NORMAL_USE,
        PAPER_NUM_CUSTOMERS,
        PAPER_PREDICTED_USE_PER_CUSTOMER,
        paper_requirement_table,
    )
    from repro.runtime.clock import TimeInterval

    return CustomerPopulation.calibrated(
        predicted_uses=[PAPER_PREDICTED_USE_PER_CUSTOMER] * PAPER_NUM_CUSTOMERS,
        requirements=[paper_requirement_table(0.8)] * PAPER_NUM_CUSTOMERS,
        normal_use=PAPER_NORMAL_USE,
        interval=TimeInterval.from_hours(17, 20),
        max_allowed_overuse=15.0,
    )


def run_acceptance_ablation(seed: int = 0) -> list[AblationEntry]:
    """A1: accept-all vs. selective bid acceptance on a flexible population."""
    entries = []
    base = paper_prototype_scenario()
    for variant, policy in (
        ("accept_all", AcceptAllBids()),
        ("selective", SelectiveBidAcceptance(safety_margin=0.05)),
    ):
        method = RewardTablesMethod(
            max_reward=30.0,
            beta_controller=ConstantBeta(2.0),
            initial_table=RewardTable(dict(base.method.initial_table.entries)),
            acceptance_policy=policy,
        )
        scenario = Scenario(
            name=f"ablation_acceptance_{variant}",
            population=_flexible_paper_population(),
            method=method,
            description="Flexible prototype population for the acceptance ablation",
        )
        result = api.run(scenario, seed=seed)
        entries.append(AblationEntry("bid_acceptance", variant, result))
    return entries


def run_bidding_policy_ablation(num_households: int = 25, seed: int = 0) -> list[AblationEntry]:
    """A2: highest-acceptable vs. expected-gain customer bidding on a synthetic town."""
    entries = []
    for variant, policy in (
        ("highest_acceptable", HighestAcceptableCutdownBidding()),
        ("expected_gain", ExpectedGainBidding()),
    ):
        method = RewardTablesMethod(
            max_reward=60.0,
            beta_controller=ConstantBeta(2.0),
            bidding_policy=policy,
            reward_epsilon=0.3,
        )
        scenario = synthetic_scenario(num_households=num_households, seed=seed, method=method)
        result = api.run(scenario, seed=seed)
        entries.append(AblationEntry("bidding_policy", variant, result))
    return entries


def run_announcement_policy_ablation(
    num_households: int = 25, seed: int = 0
) -> list[AblationEntry]:
    """A3: generate-and-select vs. statistical optimisation of the opening table."""
    entries = []
    for variant, policy in (
        ("generate_and_select", GenerateAndSelectAnnouncements()),
        ("statistical_optimisation", StatisticalAnnouncementOptimisation()),
    ):
        method = RewardTablesMethod(
            max_reward=60.0,
            beta_controller=ConstantBeta(2.0),
            announcement_policy=policy,
            reward_epsilon=0.3,
        )
        scenario = synthetic_scenario(num_households=num_households, seed=seed, method=method)
        result = api.run(scenario, seed=seed)
        entries.append(AblationEntry("announcement_policy", variant, result))
    return entries


def run_ablations(num_households: int = 25, seed: int = 0) -> AblationResult:
    """Run all three ablations and collect the comparison table."""
    entries: list[AblationEntry] = []
    entries.extend(run_acceptance_ablation(seed=seed))
    entries.extend(run_bidding_policy_ablation(num_households=num_households, seed=seed))
    entries.extend(run_announcement_policy_ablation(num_households=num_households, seed=seed))
    return AblationResult(entries=entries)
