"""Experiment E10 — convergence of the monotonic concession protocol.

"The strength of this protocol is that the negotiation process always
converges" (Section 3.1).  This experiment measures that claim empirically
over randomised populations: every run must terminate within the round
budget, announced rewards must never decrease, customers' bids must never
retreat, and the predicted overuse trajectory must be non-increasing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.agents.population import CustomerPopulation
from repro.analysis.convergence import (
    analyse_convergence,
    bid_trajectory_is_monotone,
    reward_trajectory_is_monotone,
)
from repro.analysis.reporting import format_table
from repro.core.results import NegotiationResult
from repro.core.scenario import Scenario
from repro import api
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.reward_table import CutdownRewardRequirements
from repro.negotiation.strategy import ConstantBeta
from repro.negotiation.termination import TerminationReason
from repro.runtime.rng import RandomSource


@dataclass
class ConvergenceRun:
    """One randomised population's negotiation, with the protocol checks."""

    seed: int
    num_customers: int
    result: NegotiationResult
    rewards_monotone: bool
    bids_monotone: bool
    overuse_monotone: bool

    @property
    def converged(self) -> bool:
        return self.result.termination_reason is not TerminationReason.NOT_TERMINATED

    def as_row(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "num_customers": self.num_customers,
            "rounds": self.result.rounds,
            "final_overuse": self.result.final_overuse,
            "converged": self.converged,
            "rewards_monotone": self.rewards_monotone,
            "bids_monotone": self.bids_monotone,
            "overuse_monotone": self.overuse_monotone,
            "termination": self.result.termination_reason.value,
        }


@dataclass
class ProtocolConvergenceResult:
    """All randomised runs."""

    runs: list[ConvergenceRun]

    def rows(self) -> list[dict[str, object]]:
        return [run.as_row() for run in self.runs]

    def all_converged(self) -> bool:
        return all(run.converged for run in self.runs)

    def all_monotone(self) -> bool:
        return all(
            run.rewards_monotone and run.bids_monotone and run.overuse_monotone
            for run in self.runs
        )

    def max_rounds_observed(self) -> int:
        return max(run.result.rounds for run in self.runs)

    def render(self) -> str:
        return format_table(self.rows(), title="E10 — monotonic concession convergence")


def _random_population(seed: int, random: RandomSource) -> CustomerPopulation:
    """A randomised calibrated population with a guaranteed initial peak."""
    num_customers = random.integer(10, 40)
    predicted = [max(1.0, random.normal(6.0, 2.0)) for __ in range(num_customers)]
    total = sum(predicted)
    # Normal capacity between 60% and 90% of the predicted total: a real peak.
    normal_use = total * random.uniform(0.6, 0.9)
    requirements = []
    base = CutdownRewardRequirements.paper_figure_8_customer()
    for __ in range(num_customers):
        scale = max(0.3, random.lognormal(0.3, 0.5))
        requirements.append(
            CutdownRewardRequirements(
                requirements={c: r * scale for c, r in base.requirements.items()},
                max_feasible_cutdown=random.choice([0.5, 0.6, 0.7, 0.8]),
            )
        )
    return CustomerPopulation.calibrated(
        predicted_uses=predicted,
        requirements=requirements,
        normal_use=normal_use,
        max_allowed_overuse=0.05 * normal_use,
    )


def run_protocol_convergence(
    seeds: Sequence[int] = tuple(range(10)),
    beta: float = 2.0,
    max_reward: float = 40.0,
) -> ProtocolConvergenceResult:
    """Run randomised reward-table negotiations and check the protocol properties."""
    if not seeds:
        raise ValueError("need at least one seed")
    runs = []
    for seed in seeds:
        random = RandomSource(seed, "protocol_convergence")
        population = _random_population(seed, random)
        method = RewardTablesMethod(
            max_reward=max_reward, beta_controller=ConstantBeta(beta)
        )
        scenario = Scenario(
            name=f"protocol_convergence_{seed}", population=population, method=method
        )
        result = api.run(scenario, seed=seed)
        rewards_monotone = reward_trajectory_is_monotone(result.reward_trajectory(0.4))
        bids_monotone = all(
            bid_trajectory_is_monotone(result.customer_bid_trajectory(customer))
            for customer in population.customer_ids
        )
        overuse_monotone = analyse_convergence(result).overuse_monotone_nonincreasing
        runs.append(
            ConvergenceRun(
                seed=seed,
                num_customers=len(population),
                result=result,
                rewards_monotone=rewards_monotone,
                bids_monotone=bids_monotone,
                overuse_monotone=overuse_monotone,
            )
        )
    return ProtocolConvergenceResult(runs=runs)
