"""Information links: the static view of a process composition.

A link connects the interface of one component (or the enclosing composition)
to the interface of another and describes *which* information flows and how
atoms are renamed on the way (DESIRE's information exchange specification,
Section 4.1.2).  A link without mappings transfers every atom unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.desire.errors import CompositionError
from repro.desire.information_types import Atom, InformationState, TruthValue


@dataclass(frozen=True)
class LinkMapping:
    """Renames atoms of one relation as they cross a link.

    ``argument_indices`` selects/permutes argument positions; ``None`` keeps
    all arguments in order.  An optional ``transform`` callable can rewrite
    the argument tuple (e.g. to scale a numeric argument).
    """

    source_relation: str
    target_relation: str
    argument_indices: Optional[tuple[int, ...]] = None
    transform: Optional[Callable[[tuple], tuple]] = None

    def apply(self, atom: Atom) -> Optional[Atom]:
        """Map a source atom to a target atom, or ``None`` if not applicable."""
        if atom.relation != self.source_relation:
            return None
        arguments = atom.arguments
        if self.argument_indices is not None:
            try:
                arguments = tuple(arguments[i] for i in self.argument_indices)
            except IndexError:
                raise CompositionError(
                    f"link mapping {self.source_relation!r}->{self.target_relation!r} "
                    f"selects argument indices {self.argument_indices} "
                    f"but atom {atom} has arity {atom.arity}"
                ) from None
        if self.transform is not None:
            arguments = tuple(self.transform(arguments))
        return Atom(self.target_relation, arguments)


@dataclass
class InformationLink:
    """A directed information channel between two component interfaces."""

    name: str
    source_component: str
    target_component: str
    mappings: Sequence[LinkMapping] = field(default_factory=tuple)
    #: When True (default) the link carries both TRUE and FALSE atoms;
    #: when False only TRUE atoms cross.
    carry_negative: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise CompositionError("link name must be non-empty")
        if self.source_component == self.target_component:
            raise CompositionError(
                f"link {self.name!r} connects component "
                f"{self.source_component!r} to itself"
            )

    def transfer(self, source: InformationState, target: InformationState) -> int:
        """Move matching atoms from ``source`` to ``target``; returns change count."""
        changes = 0
        for atom in list(source):
            value = source.value_of(atom)
            if value is TruthValue.UNKNOWN:
                continue
            if value is TruthValue.FALSE and not self.carry_negative:
                continue
            if not self.mappings:
                if target.assert_atom(atom, value):
                    changes += 1
                continue
            for mapping in self.mappings:
                mapped = mapping.apply(atom)
                if mapped is not None and target.assert_atom(mapped, value):
                    changes += 1
        return changes
