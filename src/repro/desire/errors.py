"""Exception hierarchy for the DESIRE framework."""

from __future__ import annotations


class DesireError(Exception):
    """Base class for all DESIRE framework errors."""


class OntologyError(DesireError):
    """An information type (ontology) is used inconsistently.

    Examples: referring to an undeclared sort, building an atom whose
    arguments do not match the relation's signature.
    """


class KnowledgeError(DesireError):
    """A knowledge base or rule is malformed.

    Examples: a rule conclusion over a relation that is not part of the
    component's output information type, a rule with unbound variables in
    the conclusion.
    """


class CompositionError(DesireError):
    """A process composition is malformed.

    Examples: an information link between non-existent components, a task
    control rule referring to an unknown component, duplicated component
    names within one composition.
    """


class UnknownAgentError(DesireError, KeyError):
    """A message names an agent that is not registered on the bus.

    Also a :class:`KeyError` for backwards compatibility with callers that
    caught the bus's original bare ``KeyError``.  Carries the offending agent
    name and how many agents *are* registered, so a typo'd name fails with an
    actionable message instead of a bare key repr.
    """

    def __init__(self, role: str, name: str, registered_count: int) -> None:
        self.role = role
        self.agent_name = name
        self.registered_count = registered_count
        super().__init__(
            f"unknown {role} {name!r}: not registered on the bus "
            f"({registered_count} agents registered)"
        )
