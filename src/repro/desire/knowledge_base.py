"""Knowledge bases: rules over information types.

DESIRE represents knowledge as formulae in order-sorted predicate logic that
can be normalised into rules.  We implement the rule form directly: a
:class:`Rule` has a conjunctive antecedent of (possibly negated) patterns and
a consequent of patterns; patterns may contain variables (strings starting
with an uppercase letter or ``?``) that are bound by matching against the
current information state.  A :class:`KnowledgeBase` applies its rules by
exhaustive forward chaining (to quiescence), which is how DESIRE primitive
reasoning components derive their output from their input.

Conditions may also include *evaluable* numeric guards expressed as Python
callables over the variable binding, because the load-management knowledge in
the paper involves arithmetic comparisons (e.g. "required reward below offered
reward").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

from repro.desire.errors import KnowledgeError
from repro.desire.information_types import (
    Atom,
    InformationState,
    ObjectValue,
    TruthValue,
)

#: A pattern argument is either a concrete value or a variable name.
PatternArgument = Union[ObjectValue, "Variable"]


@dataclass(frozen=True)
class Variable:
    """A named logical variable used in rule patterns."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise KnowledgeError("variable name must be non-empty")

    def __str__(self) -> str:
        return f"?{self.name}"


def var(name: str) -> Variable:
    """Convenience constructor for a :class:`Variable`."""
    return Variable(name)


@dataclass(frozen=True)
class Pattern:
    """A (possibly non-ground) atom pattern, optionally negated.

    ``negated=True`` means the pattern matches when the corresponding ground
    atom is explicitly FALSE or not known to be TRUE (negation as absence of
    truth, which is how the prototype's knowledge uses negative conditions).
    """

    relation: str
    arguments: tuple[PatternArgument, ...] = ()
    negated: bool = False

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.arguments)
        body = f"{self.relation}({rendered})" if self.arguments else self.relation
        return f"not {body}" if self.negated else body

    def variables(self) -> set[str]:
        return {a.name for a in self.arguments if isinstance(a, Variable)}

    def ground(self, binding: Mapping[str, ObjectValue]) -> Atom:
        """Instantiate the pattern under a binding (must cover all variables)."""
        arguments: list[ObjectValue] = []
        for argument in self.arguments:
            if isinstance(argument, Variable):
                if argument.name not in binding:
                    raise KnowledgeError(
                        f"variable {argument} unbound when grounding pattern {self}"
                    )
                arguments.append(binding[argument.name])
            else:
                arguments.append(argument)
        return Atom(self.relation, tuple(arguments))

    def match(self, atom: Atom, binding: Mapping[str, ObjectValue]) -> Optional[dict[str, ObjectValue]]:
        """Try to extend ``binding`` so the pattern matches ``atom``."""
        if atom.relation != self.relation or atom.arity != len(self.arguments):
            return None
        extended = dict(binding)
        for pattern_arg, atom_arg in zip(self.arguments, atom.arguments):
            if isinstance(pattern_arg, Variable):
                bound = extended.get(pattern_arg.name)
                if bound is None:
                    extended[pattern_arg.name] = atom_arg
                elif bound != atom_arg:
                    return None
            elif pattern_arg != atom_arg:
                return None
        return extended


#: A guard is a predicate over the variable binding (e.g. numeric comparison).
Guard = Callable[[Mapping[str, ObjectValue]], bool]


@dataclass
class Rule:
    """An if-then rule: conjunctive antecedent, guards, consequent patterns."""

    name: str
    antecedent: Sequence[Pattern] = field(default_factory=tuple)
    consequent: Sequence[Pattern] = field(default_factory=tuple)
    guards: Sequence[Guard] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise KnowledgeError("rule name must be non-empty")
        if not self.consequent:
            raise KnowledgeError(f"rule {self.name!r} must have at least one conclusion")
        bound = set()
        for pattern in self.antecedent:
            if not pattern.negated:
                bound |= pattern.variables()
        for pattern in self.consequent:
            unbound = pattern.variables() - bound
            if unbound:
                raise KnowledgeError(
                    f"rule {self.name!r} concludes with unbound variables {sorted(unbound)}"
                )
        for pattern in self.antecedent:
            if pattern.negated:
                unbound = pattern.variables() - bound
                if unbound:
                    raise KnowledgeError(
                        f"rule {self.name!r} has negated pattern {pattern} with "
                        f"variables {sorted(unbound)} not bound by positive patterns"
                    )

    def bindings(self, state: InformationState) -> list[dict[str, ObjectValue]]:
        """All bindings under which the antecedent (and guards) hold in ``state``."""
        candidates: list[dict[str, ObjectValue]] = [{}]
        positives = [p for p in self.antecedent if not p.negated]
        negatives = [p for p in self.antecedent if p.negated]
        for pattern in positives:
            new_candidates: list[dict[str, ObjectValue]] = []
            atoms = state.atoms_of_relation(pattern.relation, TruthValue.TRUE)
            for binding in candidates:
                for atom in atoms:
                    extended = pattern.match(atom, binding)
                    if extended is not None:
                        new_candidates.append(extended)
            candidates = new_candidates
            if not candidates:
                return []
        surviving = []
        for binding in candidates:
            rejected = False
            for pattern in negatives:
                ground = pattern.ground(binding)
                if state.value_of(ground) is TruthValue.TRUE:
                    rejected = True
                    break
            if rejected:
                continue
            if all(guard(binding) for guard in self.guards):
                surviving.append(binding)
        return surviving


@dataclass(frozen=True)
class Fact:
    """A ground fact with a truth value (initial content of a knowledge base)."""

    atom: Atom
    value: TruthValue = TruthValue.TRUE


class KnowledgeBase:
    """A named collection of facts and rules, applied by forward chaining."""

    def __init__(
        self,
        name: str,
        rules: Optional[Iterable[Rule]] = None,
        facts: Optional[Iterable[Fact]] = None,
    ) -> None:
        if not name:
            raise KnowledgeError("knowledge base name must be non-empty")
        self.name = name
        self._rules: list[Rule] = list(rules or [])
        self._facts: list[Fact] = list(facts or [])
        self._included: list[KnowledgeBase] = []

    # -- composition -----------------------------------------------------

    def include(self, other: "KnowledgeBase") -> None:
        """Compose this knowledge base from another (Section 4.2.2)."""
        if other is self:
            raise KnowledgeError("a knowledge base cannot include itself")
        self._included.append(other)

    def add_rule(self, rule: Rule) -> None:
        self._rules.append(rule)

    def add_fact(self, fact: Fact) -> None:
        self._facts.append(fact)

    def rules(self) -> list[Rule]:
        """All rules, own plus included, in declaration order."""
        collected: list[Rule] = []
        for included in self._included:
            collected.extend(included.rules())
        collected.extend(self._rules)
        return collected

    def facts(self) -> list[Fact]:
        """All facts, own plus included, in declaration order."""
        collected: list[Fact] = []
        for included in self._included:
            collected.extend(included.facts())
        collected.extend(self._facts)
        return collected

    # -- reasoning ---------------------------------------------------------

    def seed(self, state: InformationState) -> int:
        """Assert all facts into a state; returns the number of changes."""
        changes = 0
        for fact in self.facts():
            if state.assert_atom(fact.atom, fact.value):
                changes += 1
        return changes

    def forward_chain(self, state: InformationState, max_iterations: int = 1000) -> int:
        """Apply rules exhaustively to quiescence.

        Returns the number of atoms whose value changed.  Raises
        :class:`KnowledgeError` if quiescence is not reached within
        ``max_iterations`` passes (a safeguard against non-terminating rule
        sets).
        """
        total_changes = self.seed(state)
        for __ in range(max_iterations):
            changes_this_pass = 0
            for rule in self.rules():
                for binding in rule.bindings(state):
                    for pattern in rule.consequent:
                        atom = pattern.ground(binding)
                        value = TruthValue.FALSE if pattern.negated else TruthValue.TRUE
                        if state.assert_atom(atom, value):
                            changes_this_pass += 1
            if changes_this_pass == 0:
                return total_changes
            total_changes += changes_this_pass
        raise KnowledgeError(
            f"knowledge base {self.name!r} did not reach quiescence "
            f"within {max_iterations} iterations"
        )
