"""Components: the process-composition building blocks of DESIRE.

A *component* models a process at some abstraction level (Section 4.1).  Every
component has an input interface and an output interface, each described by an
:class:`~repro.desire.information_types.InformationType` and holding an
:class:`~repro.desire.information_types.InformationState`.

Components are either

* **primitive** — a :class:`KnowledgeComponent` (reasoning: a knowledge base
  is forward-chained over the input state to produce the output state) or a
  :class:`ComputationalComponent` (calculation/optimisation: an arbitrary
  Python callable maps the input state to output assertions), or
* **composed** — a :class:`ComposedComponent` containing sub-components,
  information links between their interfaces, and task control knowledge
  determining the activation order.

This mirrors the paper's process abstraction hierarchies (Figures 2-5): e.g.
the Utility Agent's *own process control* is a composed component containing
*determine general negotiation strategy* and *evaluate negotiation process*.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.desire.errors import CompositionError
from repro.desire.information_types import (
    Atom,
    InformationState,
    InformationType,
    TruthValue,
)
from repro.desire.knowledge_base import KnowledgeBase
from repro.desire.links import InformationLink
from repro.desire.task_control import TaskControl


@dataclass
class InterfaceSpec:
    """Declaration of a component interface: its information type."""

    information_type: InformationType

    def new_state(self, name: str) -> InformationState:
        return InformationState(name)


class Component(abc.ABC):
    """Common behaviour of primitive and composed components."""

    def __init__(
        self,
        name: str,
        input_type: Optional[InformationType] = None,
        output_type: Optional[InformationType] = None,
    ) -> None:
        if not name:
            raise CompositionError("component name must be non-empty")
        self.name = name
        self.input_type = input_type or InformationType(f"{name}_input")
        self.output_type = output_type or InformationType(f"{name}_output")
        self.input_state = InformationState(f"{name}.input")
        self.output_state = InformationState(f"{name}.output")
        self.activation_count = 0

    # -- interface handling --------------------------------------------------

    def receive(self, atom: Atom, value: TruthValue = TruthValue.TRUE) -> bool:
        """Assert an atom on the input interface."""
        return self.input_state.assert_atom(atom, value)

    def emit(self, atom: Atom, value: TruthValue = TruthValue.TRUE) -> bool:
        """Assert an atom on the output interface."""
        return self.output_state.assert_atom(atom, value)

    def reset(self) -> None:
        """Clear both interfaces (between independent activations)."""
        self.input_state.clear()
        self.output_state.clear()

    # -- activation ------------------------------------------------------------

    def activate(self) -> int:
        """Run the component once; returns the number of output changes."""
        self.activation_count += 1
        return self._run()

    @abc.abstractmethod
    def _run(self) -> int:
        """Component-specific processing; returns the number of output changes."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class PrimitiveComponent(Component):
    """Marker base class for primitive (non-composed) components."""


class KnowledgeComponent(PrimitiveComponent):
    """A primitive reasoning component driven by a knowledge base.

    Activation copies the input state into a working state, forward-chains the
    knowledge base over it and transfers every derived atom belonging to the
    output information type to the output interface.
    """

    def __init__(
        self,
        name: str,
        knowledge_base: KnowledgeBase,
        input_type: Optional[InformationType] = None,
        output_type: Optional[InformationType] = None,
    ) -> None:
        super().__init__(name, input_type, output_type)
        self.knowledge_base = knowledge_base

    def _run(self) -> int:
        working = self.input_state.copy(f"{self.name}.working")
        self.knowledge_base.forward_chain(working)
        changes = 0
        for atom in working:
            if self.output_type.accepts(atom):
                if self.output_state.assert_atom(atom, working.value_of(atom)):
                    changes += 1
        return changes


class ComputationalComponent(PrimitiveComponent):
    """A primitive component performing calculation or optimisation.

    The supplied function receives the input state and returns an iterable of
    ``(atom, truth_value)`` pairs (or bare atoms, implying TRUE) asserted on
    the output interface.  This corresponds to DESIRE primitive components
    that are not knowledge-based ("capable of performing tasks such as
    calculation, information retrieval, optimisation", Section 4.1.1).
    """

    def __init__(
        self,
        name: str,
        function: Callable[[InformationState], Iterable[object]],
        input_type: Optional[InformationType] = None,
        output_type: Optional[InformationType] = None,
    ) -> None:
        super().__init__(name, input_type, output_type)
        self._function = function

    def _run(self) -> int:
        results = self._function(self.input_state)
        changes = 0
        for item in results or ():
            if isinstance(item, Atom):
                atom, value = item, TruthValue.TRUE
            elif (
                isinstance(item, tuple)
                and len(item) == 2
                and isinstance(item[0], Atom)
                and isinstance(item[1], TruthValue)
            ):
                atom, value = item
            else:
                raise CompositionError(
                    f"computational component {self.name!r} produced {item!r}, "
                    "expected an Atom or an (Atom, TruthValue) pair"
                )
            if self.output_state.assert_atom(atom, value):
                changes += 1
        return changes


class ComposedComponent(Component):
    """A component composed of sub-components, links and task control."""

    def __init__(
        self,
        name: str,
        input_type: Optional[InformationType] = None,
        output_type: Optional[InformationType] = None,
        max_cycles: int = 100,
    ) -> None:
        super().__init__(name, input_type, output_type)
        if max_cycles <= 0:
            raise CompositionError(f"max_cycles must be positive, got {max_cycles}")
        self.max_cycles = max_cycles
        self._children: dict[str, Component] = {}
        self._links: list[InformationLink] = []
        self.task_control = TaskControl(owner=name)

    # -- composition -----------------------------------------------------------

    def add_child(self, component: Component) -> Component:
        if component.name in self._children:
            raise CompositionError(
                f"component {self.name!r} already has a child named {component.name!r}"
            )
        if component is self:
            raise CompositionError("a component cannot contain itself")
        self._children[component.name] = component
        return component

    def child(self, name: str) -> Component:
        try:
            return self._children[name]
        except KeyError:
            raise CompositionError(
                f"component {self.name!r} has no child named {name!r}"
            ) from None

    @property
    def children(self) -> list[Component]:
        return list(self._children.values())

    @property
    def child_names(self) -> list[str]:
        return list(self._children)

    def add_link(self, link: InformationLink) -> InformationLink:
        """Add an information link between interfaces within this composition."""
        valid_endpoints = set(self._children) | {self.name}
        if link.source_component not in valid_endpoints:
            raise CompositionError(
                f"link {link.name!r} has unknown source {link.source_component!r}"
            )
        if link.target_component not in valid_endpoints:
            raise CompositionError(
                f"link {link.name!r} has unknown target {link.target_component!r}"
            )
        self._links.append(link)
        return link

    @property
    def links(self) -> list[InformationLink]:
        return list(self._links)

    def descendants(self) -> list[Component]:
        """All components beneath this one (depth-first, pre-order)."""
        collected: list[Component] = []
        for child in self._children.values():
            collected.append(child)
            if isinstance(child, ComposedComponent):
                collected.extend(child.descendants())
        return collected

    # -- execution ---------------------------------------------------------------

    def _resolve_state(self, component_name: str, interface: str) -> InformationState:
        """Interface state for a link endpoint.

        For the composed component itself, a link *from* it reads its input
        interface (information entering the composition) and a link *to* it
        writes its output interface (information leaving the composition).
        For children it is the reverse: links read child outputs and write
        child inputs.
        """
        if component_name == self.name:
            return self.input_state if interface == "source" else self.output_state
        child = self.child(component_name)
        return child.output_state if interface == "source" else child.input_state

    def propagate_links(self) -> int:
        """Transfer information along every link; returns the change count."""
        changes = 0
        for link in self._links:
            source = self._resolve_state(link.source_component, "source")
            target = self._resolve_state(link.target_component, "target")
            changes += link.transfer(source, target)
        return changes

    def _run(self) -> int:
        """Activate children under task control until quiescence.

        Each cycle: propagate links, then activate every child the task
        control deems eligible (in task-control order).  The composition is
        quiescent when a full cycle produces no interface changes.
        """
        total_changes = 0
        for cycle in range(self.max_cycles):
            changes = self.propagate_links()
            eligible = self.task_control.eligible_components(self, cycle)
            for component_name in eligible:
                child = self.child(component_name)
                child_changes = child.activate()
                self.task_control.record_activation(component_name, cycle, child_changes)
                changes += child_changes
            changes += self.propagate_links()
            total_changes += changes
            if changes == 0:
                break
        return total_changes
