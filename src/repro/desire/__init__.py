"""A Python re-implementation of the DESIRE compositional modelling concepts.

DESIRE (framework for DEsign and Specification of Interacting REasoning
components) is the compositional development method the paper uses to design
and implement its multi-agent system (Section 4).  A DESIRE design consists of

* **process composition** — components at different abstraction levels, either
  *primitive* (knowledge-based or computational) or *composed* of
  sub-components, with typed input/output interfaces
  (:mod:`repro.desire.component`),
* **knowledge composition** — information types (ontologies of sorts, objects
  and relations, :mod:`repro.desire.information_types`) and knowledge bases
  (rules over those ontologies, :mod:`repro.desire.knowledge_base`),
* the **relation between both** — which knowledge a component uses, how
  information flows between components (:mod:`repro.desire.links`) and how
  task control activates components (:mod:`repro.desire.task_control`).

The :mod:`repro.desire.engine` module executes a composed component to
quiescence, and :mod:`repro.desire.trace` records the execution for
inspection and verification.  The agents of the paper (Section 5) are built
as DESIRE component hierarchies in :mod:`repro.agents`.
"""

from repro.desire.component import (
    Component,
    ComposedComponent,
    ComputationalComponent,
    InterfaceSpec,
    KnowledgeComponent,
    PrimitiveComponent,
)
from repro.desire.engine import DesireEngine, EngineReport
from repro.desire.errors import (
    CompositionError,
    DesireError,
    KnowledgeError,
    OntologyError,
)
from repro.desire.information_types import (
    Atom,
    InformationState,
    InformationType,
    Relation,
    Sort,
    TruthValue,
)
from repro.desire.knowledge_base import Fact, KnowledgeBase, Rule
from repro.desire.links import InformationLink, LinkMapping
from repro.desire.task_control import ActivationRecord, TaskControl, TaskControlRule
from repro.desire.trace import ExecutionTrace, TraceEvent

__all__ = [
    "ActivationRecord",
    "Atom",
    "Component",
    "ComposedComponent",
    "CompositionError",
    "ComputationalComponent",
    "DesireEngine",
    "DesireError",
    "EngineReport",
    "ExecutionTrace",
    "Fact",
    "InformationLink",
    "InformationState",
    "InformationType",
    "InterfaceSpec",
    "KnowledgeBase",
    "KnowledgeComponent",
    "KnowledgeError",
    "LinkMapping",
    "OntologyError",
    "PrimitiveComponent",
    "Relation",
    "Rule",
    "Sort",
    "TaskControl",
    "TaskControlRule",
    "TraceEvent",
    "TruthValue",
]
