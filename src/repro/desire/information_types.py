"""Information types: the knowledge-composition building blocks of DESIRE.

An *information type* defines an ontology: sorts (domains of objects),
objects belonging to those sorts, and relations over sorts.  Ground *atoms*
built from relations and objects are the vocabulary of the components'
input/output interfaces and of the knowledge bases.  Information *states*
assign epistemic truth values (true / false / unknown) to atoms, following
DESIRE's three-valued treatment of partial information.

Information types compose: a type can *include* other types, making their
sorts, objects and relations visible (Section 4.2.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Optional, Union

from repro.desire.errors import OntologyError

#: Values allowed as atom arguments: named objects, numbers or booleans.
ObjectValue = Union[str, int, float, bool]


class TruthValue(Enum):
    """Three-valued epistemic truth value of an atom in an information state."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def negate(self) -> "TruthValue":
        if self is TruthValue.TRUE:
            return TruthValue.FALSE
        if self is TruthValue.FALSE:
            return TruthValue.TRUE
        return TruthValue.UNKNOWN


@dataclass(frozen=True)
class Sort:
    """A named domain of objects.

    A sort may be declared *numeric*, in which case any int/float value is
    considered to belong to it without explicit object declarations (DESIRE's
    built-in sorts for numbers are modelled this way).
    """

    name: str
    numeric: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise OntologyError(f"invalid sort name {self.name!r}")


@dataclass(frozen=True)
class Relation:
    """A named relation with a typed argument signature."""

    name: str
    argument_sorts: tuple[Sort, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise OntologyError(f"invalid relation name {self.name!r}")

    @property
    def arity(self) -> int:
        return len(self.argument_sorts)


@dataclass(frozen=True)
class Atom:
    """A ground atom: a relation applied to concrete argument values."""

    relation: str
    arguments: tuple[ObjectValue, ...] = ()

    def __str__(self) -> str:
        if not self.arguments:
            return self.relation
        rendered = ", ".join(str(a) for a in self.arguments)
        return f"{self.relation}({rendered})"

    @property
    def arity(self) -> int:
        return len(self.arguments)


class InformationType:
    """An ontology: sorts, objects, relations — possibly composed of others."""

    def __init__(self, name: str, includes: Optional[Iterable["InformationType"]] = None) -> None:
        if not name:
            raise OntologyError("information type name must be non-empty")
        self.name = name
        self._includes: list[InformationType] = list(includes or [])
        self._sorts: dict[str, Sort] = {}
        self._objects: dict[str, set[ObjectValue]] = {}
        self._relations: dict[str, Relation] = {}

    # -- declaration ---------------------------------------------------------

    def declare_sort(self, name: str, numeric: bool = False) -> Sort:
        """Declare (or re-fetch) a sort."""
        existing = self.find_sort(name)
        if existing is not None:
            if existing.numeric != numeric:
                raise OntologyError(
                    f"sort {name!r} re-declared with a different numeric flag"
                )
            return existing
        sort = Sort(name, numeric)
        self._sorts[name] = sort
        self._objects.setdefault(name, set())
        return sort

    def declare_object(self, sort_name: str, value: ObjectValue) -> None:
        """Declare an object as belonging to a sort."""
        sort = self.find_sort(sort_name)
        if sort is None:
            raise OntologyError(f"cannot declare object for unknown sort {sort_name!r}")
        self._objects.setdefault(sort_name, set()).add(value)

    def declare_relation(self, name: str, *argument_sorts: str) -> Relation:
        """Declare (or re-fetch) a relation with the given argument sorts."""
        sorts = []
        for sort_name in argument_sorts:
            sort = self.find_sort(sort_name)
            if sort is None:
                raise OntologyError(
                    f"relation {name!r} refers to unknown sort {sort_name!r}"
                )
            sorts.append(sort)
        existing = self.find_relation(name)
        if existing is not None:
            if existing.argument_sorts != tuple(sorts):
                raise OntologyError(f"relation {name!r} re-declared with a different signature")
            return existing
        relation = Relation(name, tuple(sorts))
        self._relations[name] = relation
        return relation

    # -- lookup (searches included types too) ---------------------------------

    def find_sort(self, name: str) -> Optional[Sort]:
        if name in self._sorts:
            return self._sorts[name]
        for included in self._includes:
            found = included.find_sort(name)
            if found is not None:
                return found
        return None

    def find_relation(self, name: str) -> Optional[Relation]:
        if name in self._relations:
            return self._relations[name]
        for included in self._includes:
            found = included.find_relation(name)
            if found is not None:
                return found
        return None

    def objects_of(self, sort_name: str) -> set[ObjectValue]:
        """All objects declared for a sort, across included types."""
        values: set[ObjectValue] = set(self._objects.get(sort_name, set()))
        for included in self._includes:
            values |= included.objects_of(sort_name)
        return values

    def relations(self) -> dict[str, Relation]:
        """All visible relations (own plus included)."""
        merged: dict[str, Relation] = {}
        for included in self._includes:
            merged.update(included.relations())
        merged.update(self._relations)
        return merged

    def sorts(self) -> dict[str, Sort]:
        """All visible sorts (own plus included)."""
        merged: dict[str, Sort] = {}
        for included in self._includes:
            merged.update(included.sorts())
        merged.update(self._sorts)
        return merged

    # -- atom construction & validation ---------------------------------------

    def atom(self, relation_name: str, *arguments: ObjectValue) -> Atom:
        """Build a ground atom, validating it against the ontology."""
        candidate = Atom(relation_name, tuple(arguments))
        self.validate_atom(candidate)
        return candidate

    def validate_atom(self, atom: Atom) -> None:
        """Check that an atom is well-formed under this ontology."""
        relation = self.find_relation(atom.relation)
        if relation is None:
            raise OntologyError(f"unknown relation {atom.relation!r} in atom {atom}")
        if relation.arity != atom.arity:
            raise OntologyError(
                f"atom {atom} has {atom.arity} arguments, "
                f"relation {relation.name!r} expects {relation.arity}"
            )
        for value, sort in zip(atom.arguments, relation.argument_sorts):
            if sort.numeric:
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise OntologyError(
                        f"argument {value!r} of {atom} must be numeric (sort {sort.name!r})"
                    )
                continue
            declared = self.objects_of(sort.name)
            if declared and value not in declared:
                raise OntologyError(
                    f"argument {value!r} of {atom} is not a declared object of sort {sort.name!r}"
                )

    def accepts(self, atom: Atom) -> bool:
        """Whether the atom is well-formed under this ontology."""
        try:
            self.validate_atom(atom)
        except OntologyError:
            return False
        return True


class InformationState:
    """A three-valued assignment of truth values to atoms.

    This models the content of a component's input or output interface at a
    point in time.  Atoms not present are ``UNKNOWN``.
    """

    def __init__(self, name: str = "state") -> None:
        self.name = name
        self._values: dict[Atom, TruthValue] = {}

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._values)

    def value_of(self, atom: Atom) -> TruthValue:
        """Truth value of an atom (``UNKNOWN`` when never asserted)."""
        return self._values.get(atom, TruthValue.UNKNOWN)

    def holds(self, atom: Atom) -> bool:
        return self.value_of(atom) is TruthValue.TRUE

    def assert_atom(self, atom: Atom, value: TruthValue = TruthValue.TRUE) -> bool:
        """Set an atom's truth value.

        Returns ``True`` when this changed the state (used by the engine to
        detect quiescence).
        """
        if not isinstance(value, TruthValue):
            raise TypeError(f"expected a TruthValue, got {value!r}")
        if self._values.get(atom) == value:
            return False
        if value is TruthValue.UNKNOWN:
            removed = atom in self._values
            self._values.pop(atom, None)
            return removed
        self._values[atom] = value
        return True

    def retract(self, atom: Atom) -> bool:
        """Forget an atom (back to ``UNKNOWN``)."""
        return self.assert_atom(atom, TruthValue.UNKNOWN)

    def atoms_where(self, value: TruthValue) -> list[Atom]:
        """All atoms holding the given truth value."""
        return [atom for atom, v in self._values.items() if v == value]

    def true_atoms(self) -> list[Atom]:
        return self.atoms_where(TruthValue.TRUE)

    def atoms_of_relation(self, relation_name: str, value: TruthValue = TruthValue.TRUE) -> list[Atom]:
        """All atoms of one relation holding a given truth value."""
        return [
            atom for atom, v in self._values.items()
            if atom.relation == relation_name and v == value
        ]

    def clear(self) -> None:
        self._values.clear()

    def copy(self, name: Optional[str] = None) -> "InformationState":
        duplicate = InformationState(name or self.name)
        duplicate._values = dict(self._values)
        return duplicate

    def merge_from(self, other: "InformationState") -> int:
        """Copy every non-unknown atom from another state; returns change count."""
        changes = 0
        for atom, value in other._values.items():
            if self.assert_atom(atom, value):
                changes += 1
        return changes

    def as_dict(self) -> dict[str, str]:
        """String rendering of the state (for traces and debugging)."""
        return {str(atom): value.value for atom, value in sorted(
            self._values.items(), key=lambda item: str(item[0])
        )}
