"""The DESIRE execution engine.

The engine runs a top-level composed component to quiescence, recording an
:class:`~repro.desire.trace.ExecutionTrace` along the way.  It corresponds to
the "implementation generator" role of the original DESIRE software
environment: given a compositional specification, it produces executable
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.desire.component import ComposedComponent, Component
from repro.desire.errors import DesireError
from repro.desire.trace import ExecutionTrace, TraceEvent, TraceEventKind


@dataclass
class EngineReport:
    """Outcome of one engine run."""

    cycles: int = 0
    total_changes: int = 0
    quiescent: bool = False
    activations: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "cycles": self.cycles,
            "total_changes": self.total_changes,
            "quiescent": self.quiescent,
            "activations": dict(self.activations),
        }


class DesireEngine:
    """Runs a component hierarchy to quiescence with tracing."""

    def __init__(self, max_cycles: int = 200) -> None:
        if max_cycles <= 0:
            raise DesireError(f"max_cycles must be positive, got {max_cycles}")
        self.max_cycles = max_cycles
        self.trace = ExecutionTrace("engine")

    def run(self, component: Component) -> EngineReport:
        """Activate a component (hierarchy) until it is quiescent.

        For a primitive component a single activation suffices (it is a pure
        function of its input); for a composed component the engine cycles
        until no interface changes occur or ``max_cycles`` is hit.
        """
        report = EngineReport()
        if not isinstance(component, ComposedComponent):
            changes = component.activate()
            self.trace.record_activation(component.name, cycle=0, changes=changes)
            report.cycles = 1
            report.total_changes = changes
            report.quiescent = True
            report.activations[component.name] = 1
            return report

        for cycle in range(self.max_cycles):
            changes = component.propagate_links()
            eligible = component.task_control.eligible_components(component, cycle)
            for name in eligible:
                child = component.child(name)
                child_changes = child.activate()
                component.task_control.record_activation(name, cycle, child_changes)
                self.trace.record_activation(name, cycle=cycle, changes=child_changes)
                report.activations[name] = report.activations.get(name, 0) + 1
                changes += child_changes
            changes += component.propagate_links()
            report.cycles = cycle + 1
            report.total_changes += changes
            if changes == 0:
                report.quiescent = True
                self.trace.record(
                    TraceEvent(
                        TraceEventKind.NOTE,
                        component.name,
                        detail=f"quiescent after {cycle + 1} cycles",
                        cycle=cycle,
                    )
                )
                break
        return report

    def run_until(self, component: ComposedComponent, condition, max_runs: int = 50) -> EngineReport:
        """Repeatedly run a composition until ``condition(component)`` holds.

        Useful for negotiation loops where external information (new bids)
        arrives between runs.  Returns the report of the final run.
        """
        if max_runs <= 0:
            raise DesireError(f"max_runs must be positive, got {max_runs}")
        report = EngineReport()
        for __ in range(max_runs):
            report = self.run(component)
            if condition(component):
                return report
        return report
