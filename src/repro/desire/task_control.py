"""Task control knowledge: the dynamic view of a process composition.

Task control determines *which* sub-components of a composed component are
activated and *in which order* (Section 4.1.2: "a specification of task
control knowledge used to control processes and information exchange").

We support two regimes that cover all the compositions needed for the paper's
agents:

* a default *activation order* — every child is eligible every cycle, in a
  declared order (or declaration order when none is given), and
* conditional :class:`TaskControlRule`\\ s that make a component eligible only
  when a predicate over the composition holds (e.g. "activate *evaluate
  negotiation process* only after negotiation has ended").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.desire.errors import CompositionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.desire.component import ComposedComponent


@dataclass
class TaskControlRule:
    """Makes a component eligible for activation when a condition holds."""

    component_name: str
    condition: Callable[["ComposedComponent", int], bool]
    description: str = ""

    def applies(self, composition: "ComposedComponent", cycle: int) -> bool:
        return bool(self.condition(composition, cycle))


@dataclass
class ActivationRecord:
    """One activation of one child component, for traceability."""

    component_name: str
    cycle: int
    changes: int


class TaskControl:
    """Task control knowledge attached to one composed component."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._order: Optional[list[str]] = None
        self._rules: list[TaskControlRule] = []
        self._excluded: set[str] = set()
        self._history: list[ActivationRecord] = []

    # -- configuration ---------------------------------------------------------

    def set_activation_order(self, order: Sequence[str]) -> None:
        """Fix the order in which eligible children are activated."""
        if len(set(order)) != len(order):
            raise CompositionError(
                f"activation order for {self.owner!r} contains duplicates: {list(order)}"
            )
        self._order = list(order)

    def add_rule(self, rule: TaskControlRule) -> None:
        """Add a conditional eligibility rule for one child."""
        self._rules.append(rule)

    def exclude(self, component_name: str) -> None:
        """Permanently exclude a child from the default activation set.

        Used for children that must only run when an explicit rule fires
        (e.g. evaluation components that run after negotiation ends).
        """
        self._excluded.add(component_name)

    def include(self, component_name: str) -> None:
        """Undo a previous :meth:`exclude`."""
        self._excluded.discard(component_name)

    # -- queries ---------------------------------------------------------------

    def eligible_components(self, composition: "ComposedComponent", cycle: int) -> list[str]:
        """Names of children to activate this cycle, in activation order."""
        names = self._order if self._order is not None else composition.child_names
        unknown = [n for n in names if n not in composition.child_names]
        if unknown:
            raise CompositionError(
                f"task control of {self.owner!r} refers to unknown components {unknown}"
            )
        eligible = []
        for name in names:
            if name in self._excluded:
                rules = [r for r in self._rules if r.component_name == name]
                if rules and any(r.applies(composition, cycle) for r in rules):
                    eligible.append(name)
                continue
            blocking = [r for r in self._rules if r.component_name == name]
            if blocking and not any(r.applies(composition, cycle) for r in blocking):
                continue
            eligible.append(name)
        return eligible

    def record_activation(self, component_name: str, cycle: int, changes: int) -> None:
        self._history.append(ActivationRecord(component_name, cycle, changes))

    @property
    def history(self) -> list[ActivationRecord]:
        return list(self._history)

    def activations_of(self, component_name: str) -> int:
        """How often one child has been activated under this control."""
        return sum(1 for record in self._history if record.component_name == component_name)
