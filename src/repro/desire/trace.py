"""Execution traces of DESIRE component hierarchies.

The companion paper (ref [2]) verifies the multi-agent system against
behavioural properties using execution traces.  We record traces in the same
spirit: a linear sequence of :class:`TraceEvent` objects (activations,
interface changes, link transfers) that tests and analysis code can query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional


class TraceEventKind(Enum):
    """Classification of trace events."""

    ACTIVATION = "activation"
    INPUT_CHANGE = "input_change"
    OUTPUT_CHANGE = "output_change"
    LINK_TRANSFER = "link_transfer"
    NOTE = "note"


@dataclass(frozen=True)
class TraceEvent:
    """A single recorded step of an execution."""

    kind: TraceEventKind
    component: str
    detail: str = ""
    cycle: Optional[int] = None
    changes: int = 0


class ExecutionTrace:
    """Append-only record of an execution of a component hierarchy."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self._events: list[TraceEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    # -- recording -----------------------------------------------------------

    def record(self, event: TraceEvent) -> None:
        self._events.append(event)

    def record_activation(self, component: str, cycle: Optional[int] = None, changes: int = 0) -> None:
        self.record(TraceEvent(TraceEventKind.ACTIVATION, component, cycle=cycle, changes=changes))

    def record_note(self, component: str, detail: str) -> None:
        self.record(TraceEvent(TraceEventKind.NOTE, component, detail=detail))

    def record_output_change(self, component: str, detail: str, changes: int = 1) -> None:
        self.record(TraceEvent(TraceEventKind.OUTPUT_CHANGE, component, detail=detail, changes=changes))

    # -- queries --------------------------------------------------------------

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def events_of(self, component: str) -> list[TraceEvent]:
        """Every event concerning one component."""
        return [event for event in self._events if event.component == component]

    def activations(self, component: Optional[str] = None) -> list[TraceEvent]:
        """Activation events, optionally restricted to one component."""
        return [
            event
            for event in self._events
            if event.kind is TraceEventKind.ACTIVATION
            and (component is None or event.component == component)
        ]

    def activation_count(self, component: str) -> int:
        return len(self.activations(component))

    def components_seen(self) -> list[str]:
        """Distinct component names in first-appearance order."""
        seen: list[str] = []
        for event in self._events:
            if event.component not in seen:
                seen.append(event.component)
        return seen

    def merge(self, others: Iterable["ExecutionTrace"]) -> "ExecutionTrace":
        """A new trace concatenating this one with others (in order)."""
        merged = ExecutionTrace(f"{self.name}+merged")
        merged._events = list(self._events)
        for other in others:
            merged._events.extend(other._events)
        return merged

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering (for debugging and reports)."""
        lines = []
        events = self._events if limit is None else self._events[:limit]
        for index, event in enumerate(events):
            cycle = f" cycle={event.cycle}" if event.cycle is not None else ""
            detail = f" {event.detail}" if event.detail else ""
            lines.append(
                f"[{index:4d}] {event.kind.value:<14} {event.component}{cycle}"
                f" changes={event.changes}{detail}"
            )
        if limit is not None and len(self._events) > limit:
            lines.append(f"... ({len(self._events) - limit} more events)")
        return "\n".join(lines)
