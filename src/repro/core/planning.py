"""Day-ahead planning and multi-day load-management campaigns.

The paper's Utility Agent does not negotiate in a vacuum: it observes
consumption, maintains statistical models, predicts tomorrow's balance and
*then* decides whether to negotiate (Section 5.1).  This module closes that
loop on top of the substrates:

* :class:`DayAheadPlanner` — owns a household population, a
  :class:`~repro.grid.prediction.ConsumptionPredictor` trained on realised
  demand, and the preference models; given a weather forecast it builds the
  :class:`~repro.core.scenario.Scenario` for tomorrow's expected peak.
* :class:`MultiDayCampaign` — runs the full observe → predict → negotiate →
  apply → account loop over a sequence of days, retraining the predictor as
  realised demand comes in.  This is the "dynamic load management of the
  power grid" the introduction of the paper motivates, and it exercises the
  prediction, negotiation and accounting layers together.

The planning path is *columnar* end to end: the planner packs its households
into a :class:`~repro.grid.fleet.HouseholdFleet` and, per planned day, runs
one array-native prediction plus one broadcasted requirement-matrix build
(:meth:`~repro.agents.preferences.CustomerPreferenceModel
.requirements_for_fleet`) instead of a per-household Python loop — the same
day's plan, bit for bit, at a fraction of the wall-clock.  The scalar
per-household path survives as ``planning="scalar"``: the equivalence oracle
and the fallback for fleet-incompatible household sets.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.agents.population import CustomerPopulation, CustomerSpec
from repro.agents.preferences import CustomerPreferenceModel
from repro.core.checkpoint import CHECKPOINT_VERSION, CampaignCheckpoint
from repro.core.modes import (
    MATERIALISE_MODES,
    PLANNING_MODES,
    validate_history_window,
    validate_materialise_mode,
    validate_planning_mode,
)
from repro.core.results import SystemResult
from repro.core.scenario import Scenario
from repro.core.system import LoadBalancingSystem
from repro.grid.demand import DemandModel
from repro.grid.fleet import Fleet, FleetIncompatibleError, pack_fleet
from repro.grid.household import Household
from repro.grid.prediction import ConsumptionPredictor, FleetPrediction, PredictionModel
from repro.grid.production import ProductionModel
from repro.grid.weather import WeatherCondition, WeatherModel, WeatherSample
from repro.negotiation.methods.base import NegotiationMethod
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.strategy import ConstantBeta
from repro.runtime.clock import TimeInterval
from repro.runtime.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - typing only (import would cycle via repro.api)
    from repro.api.config import EngineConfig

# Re-exported for backwards compatibility; canonical home is repro.core.modes.
__all__ = [
    "PLANNING_MODES", "MATERIALISE_MODES",
    "DayAheadPlanner", "MultiDayCampaign", "CampaignDay", "CampaignResult",
]


class DayAheadPlanner:
    """Builds tomorrow's negotiation scenario from history and a forecast.

    Parameters
    ----------
    households:
        The customer base.
    normal_capacity_kw:
        Capacity servable at normal production cost.
    predictor:
        Consumption predictor (weather-adjusted by default); it must be
        trained via :meth:`observe_day` before :meth:`plan` can run.
    preference_model:
        Base preference model used to derive each household's
        cut-down-reward requirements for the predicted peak interval.
    method_factory:
        Callable building a fresh negotiation method per planned day (a
        method object carries per-negotiation state such as β controllers).
    planning:
        Default planning path: ``"columnar"`` (fleet kernels, the default) or
        ``"scalar"`` (per-household loop, the equivalence oracle).  Both
        produce bit-identical scenarios; fleet-incompatible household sets
        fall back to scalar automatically.
    materialise:
        Default planning → negotiation hand-off: ``"eager"`` (per-household
        spec objects, the default and the equivalence oracle) or ``"lazy"``
        (columnar arrays only, nothing materialised per household).  Both
        run bit-identical campaigns; lazy applies on the columnar path.
    history_window:
        Observation window (days) for the *default* predictor: ``None``
        keeps the full history, a positive value bounds predictor memory to
        O(window · N · slots) via a ring buffer.  When an explicit
        ``predictor`` is passed its own window governs and this must stay
        ``None``.
    """

    def __init__(
        self,
        households: Sequence[Household],
        normal_capacity_kw: float,
        predictor: Optional[ConsumptionPredictor] = None,
        preference_model: Optional[CustomerPreferenceModel] = None,
        max_reward: float = 60.0,
        beta: float = 2.0,
        max_allowed_overuse_fraction: float = 0.02,
        random: Optional[RandomSource] = None,
        planning: str = "columnar",
        materialise: str = "eager",
        history_window: Optional[int] = None,
    ) -> None:
        if not households:
            raise ValueError("the planner needs at least one household")
        if normal_capacity_kw <= 0:
            raise ValueError("normal capacity must be positive")
        if not 0.0 <= max_allowed_overuse_fraction < 1.0:
            raise ValueError("max allowed overuse fraction must be in [0, 1)")
        validate_planning_mode(planning)
        validate_materialise_mode(materialise)
        validate_history_window(history_window)
        if predictor is not None and history_window is not None:
            raise ValueError(
                "pass history_window to the predictor itself when supplying "
                "an explicit predictor"
            )
        self.households = list(households)
        self.normal_capacity_kw = float(normal_capacity_kw)
        self.predictor = predictor or ConsumptionPredictor(
            PredictionModel.WEATHER_ADJUSTED, history_window=history_window
        )
        self.preference_model = preference_model or CustomerPreferenceModel()
        self.max_reward = float(max_reward)
        self.beta = float(beta)
        self.max_allowed_overuse_fraction = float(max_allowed_overuse_fraction)
        self.planning = planning
        self.materialise = materialise
        self._random = random if random is not None else RandomSource(0, "planner")
        #: Why the planner fell off the columnar path, or ``None`` when the
        #: fleet packed (``pack_fleet`` buckets heterogeneous populations, so
        #: in practice only mixed profile resolutions end up here).  Campaign
        #: day metadata surfaces this as ``planning_fallback``.
        self.planning_fallback: Optional[str] = None
        try:
            self.fleet: Optional[Fleet] = pack_fleet(self.households)
        except FleetIncompatibleError as exc:
            self.fleet = None
            self.planning_fallback = str(exc)
        self._demand_model = DemandModel(
            self.households, self._random.spawn("demand"), behavioural_noise=0.05,
            fleet=self.fleet,
        )
        #: Memoised last prediction, keyed by (forecast, history length):
        #: ``predicted_peak_interval`` and ``plan`` share one predictor run.
        self._prediction_cache: Optional[tuple[WeatherSample, int, FleetPrediction]] = None

    # -- observation --------------------------------------------------------------

    def observe_day(self, weather: WeatherSample) -> None:
        """Realise one day of demand under ``weather`` and feed it to the predictor."""
        self.observe_days([weather])

    def observe_days(self, weathers: Sequence[WeatherSample]) -> None:
        """Realise several days and feed them to the predictor in one batch."""
        self.predictor.observe_many(
            [self._demand_model.realise(weather) for weather in weathers]
        )

    @property
    def history_length(self) -> int:
        return self.predictor.history_length

    def set_history_window(self, history_window: Optional[int]) -> None:
        """Re-bound the predictor's observation window (campaign runs use this).

        Shrinking drops the oldest days in place — the memoised prediction is
        invalidated so the next plan sees exactly the windowed history.
        Raises a clear error for custom predictors without window support.
        """
        validate_history_window(history_window)
        rebound = getattr(self.predictor, "set_history_window", None)
        if rebound is None:
            raise ValueError(
                f"predictor {type(self.predictor).__name__} does not support "
                f"history windows; leave EngineConfig.history_window unset or "
                f"use a ConsumptionPredictor"
            )
        rebound(history_window)
        self._prediction_cache = None

    # -- planning -------------------------------------------------------------------

    def _predict(self, forecast: WeatherSample) -> FleetPrediction:
        """One predictor run per (forecast, history) pair, memoised.

        Keyed on the *total* observed-day count, which keeps growing even
        once a windowed predictor's retained length plateaus at the window —
        every new observation must invalidate the memo.
        """
        cached = self._prediction_cache
        history = getattr(
            self.predictor, "observed_days", self.predictor.history_length
        )
        if cached is not None and cached[0] == forecast and cached[1] == history:
            return cached[2]
        prediction = self.predictor.predict_columnar(forecast)
        self._prediction_cache = (forecast, history, prediction)
        return prediction

    def predicted_peak_interval(self, forecast: WeatherSample) -> Optional[TimeInterval]:
        """The contiguous interval in which predicted demand exceeds capacity."""
        return self._predict(forecast).aggregate.peak_interval(self.normal_capacity_kw)

    def plan(
        self,
        forecast: WeatherSample,
        method: Optional[NegotiationMethod] = None,
        planning: Optional[str] = None,
        materialise: Optional[str] = None,
    ) -> Optional[Scenario]:
        """Build tomorrow's scenario, or ``None`` when no peak is predicted.

        ``planning`` and ``materialise`` override the planner's defaults for
        this call; every mode combination builds bit-identical scenarios
        (``materialise="lazy"`` merely defers the per-household objects, and
        only applies on the columnar path — the scalar oracle always
        materialises).
        """
        mode = validate_planning_mode(
            planning if planning is not None else self.planning
        )
        hand_off = validate_materialise_mode(
            materialise if materialise is not None else self.materialise
        )
        prediction = self._predict(forecast)
        interval = prediction.aggregate.peak_interval(self.normal_capacity_kw)
        if interval is None:
            return None
        if mode == "columnar" and self.fleet is not None:
            population = self._columnar_population(
                prediction, interval, forecast, materialise=hand_off
            )
        else:
            population = self._scalar_population(prediction, interval, forecast)
        if method is None:
            method = RewardTablesMethod(
                max_reward=self.max_reward,
                beta_controller=ConstantBeta(self.beta),
                reward_epsilon=0.005 * self.max_reward,
            )
        return Scenario(
            name="day_ahead_plan",
            population=population,
            method=method,
            description="Day-ahead scenario built from the consumption predictor",
            weather=forecast,
        )

    def _columnar_population(
        self,
        prediction: FleetPrediction,
        interval: TimeInterval,
        forecast: WeatherSample,
        materialise: str = "eager",
    ) -> CustomerPopulation:
        """The fleet path: batched kernels, no per-household loop."""
        fleet = self.fleet
        if list(prediction.household_ids) != fleet.household_ids:
            raise ValueError("prediction household order does not match the fleet")
        requirements = self.preference_model.requirements_for_fleet(
            fleet, interval, forecast
        )
        return CustomerPopulation.from_fleet(
            fleet=fleet,
            predicted_uses=prediction.average_in(interval),
            requirements=requirements,
            normal_use=self.normal_capacity_kw,
            interval=interval,
            max_allowed_overuse=self.max_allowed_overuse_fraction * self.normal_capacity_kw,
            weather=forecast,
            materialise=materialise,
        )

    def _scalar_population(
        self, prediction: FleetPrediction, interval: TimeInterval, forecast: WeatherSample
    ) -> CustomerPopulation:
        """The per-household object loop (equivalence oracle / fallback)."""
        per_household = prediction.as_result().household_prediction_in(interval)
        specs = []
        for household in self.households:
            predicted = per_household[household.household_id]
            requirements = self.preference_model.requirements_for_household(
                household, interval, forecast
            )
            specs.append(
                CustomerSpec(
                    customer_id=household.household_id,
                    predicted_use=predicted,
                    allowed_use=predicted,
                    requirements=requirements,
                    household=household,
                )
            )
        return CustomerPopulation(
            specs=specs,
            normal_use=self.normal_capacity_kw,
            interval=interval,
            max_allowed_overuse=self.max_allowed_overuse_fraction * self.normal_capacity_kw,
            households=self.households,
            weather=forecast,
        )


@dataclass
class CampaignDay:
    """Outcome of one day of the campaign."""

    day_index: int
    weather: WeatherSample
    negotiated: bool
    outcome: Optional[SystemResult]
    prediction_error: Optional[float] = None
    #: Which engine backend ran the day's negotiation (``None`` when the day
    #: needed none).  Deliberately not part of :meth:`as_row`: by the
    #: equivalence contract the backend choice never changes the outcome, so
    #: rows stay comparable across backends.
    backend: Optional[str] = None
    #: Execution provenance from the day's negotiation — the effective
    #: rounds mode and kernel-cache hit/miss counters when the fast path
    #: reported them.  Like ``backend``, never part of :meth:`as_row`.
    metadata: dict[str, object] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        row: dict[str, object] = {
            "day": self.day_index,
            "temperature_c": self.weather.temperature_c,
            "condition": self.weather.condition.value,
            "negotiated": self.negotiated,
        }
        if self.outcome is not None:
            row.update(
                {
                    "peak_before_kw": self.outcome.peak_before_kw,
                    "peak_after_kw": self.outcome.peak_after_kw,
                    "reward_paid": self.outcome.reward_paid,
                    "net_utility_benefit": self.outcome.net_utility_benefit,
                }
            )
        if self.prediction_error is not None:
            row["prediction_mape"] = self.prediction_error
        return row


@dataclass
class CampaignResult:
    """Outcome of a multi-day campaign."""

    days: list[CampaignDay] = field(default_factory=list)
    #: Wall-clock spent in the planning layer (observe / predict / plan) and
    #: in the negotiation-plus-accounting layer, across the whole campaign.
    planning_seconds: float = 0.0
    negotiation_seconds: float = 0.0
    #: Run bookkeeping recorded by the façade (backend requested, planning
    #: mode, per-day backends); never part of :meth:`rows`.
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def num_days(self) -> int:
        return len(self.days)

    @property
    def days_negotiated(self) -> int:
        return sum(1 for day in self.days if day.negotiated)

    @property
    def total_reward_paid(self) -> float:
        return sum(day.outcome.reward_paid for day in self.days if day.outcome is not None)

    @property
    def total_net_benefit(self) -> float:
        return sum(
            day.outcome.net_utility_benefit for day in self.days if day.outcome is not None
        )

    @property
    def backends(self) -> list[Optional[str]]:
        """Engine backend per day (``None`` on days without a negotiation)."""
        return [day.backend for day in self.days]

    def rows(self) -> list[dict[str, object]]:
        return [day.as_row() for day in self.days]


class MultiDayCampaign:
    """Observe, predict, negotiate and account over a sequence of days.

    Each day's negotiation runs through the :mod:`repro.api` engine façade
    with the given ``backend`` and :class:`~repro.api.EngineConfig`; the
    default ``backend="auto"`` selects the vectorized fast path whenever the
    planned scenario qualifies, which is what makes multi-week campaigns over
    10k-household populations tractable.  The backend that actually ran each
    day is recorded on the :class:`CampaignDay`, and the planning- versus
    negotiation-phase wall-clock split on the :class:`CampaignResult`.
    """

    def __init__(
        self,
        planner: DayAheadPlanner,
        production: Optional[ProductionModel] = None,
        weather_model: Optional[WeatherModel] = None,
        warmup_days: int = 3,
        seed: int = 0,
        backend: str = "auto",
        config: Optional["EngineConfig"] = None,
    ) -> None:
        if warmup_days <= 0:
            raise ValueError("the predictor needs at least one warm-up day")
        self.planner = planner
        self.production = production or ProductionModel.two_tier(
            normal_capacity_kw=planner.normal_capacity_kw,
            peak_capacity_kw=planner.normal_capacity_kw,
        )
        self.weather_model = weather_model or WeatherModel(RandomSource(seed, "campaign_weather"))
        self.warmup_days = int(warmup_days)
        self.seed = seed
        self.backend = backend
        self.config = config
        if config is not None and config.history_window is not None:
            # A set window governs the campaign: re-bound the planner's
            # predictor in place (keeps the most recent days when shrinking;
            # the re-bound persists after the campaign), so campaign memory
            # is O(window · N · slots).  None leaves the planner's own
            # predictor configuration untouched.
            planner.set_history_window(config.history_window)

    def run(
        self,
        num_days: int,
        conditions: Optional[Sequence[WeatherCondition]] = None,
        checkpoint_path: Optional[str | os.PathLike] = None,
        resume_from: Optional[str | os.PathLike] = None,
    ) -> CampaignResult:
        """Run the campaign for ``num_days`` (after the warm-up observations).

        ``checkpoint_path`` persists a :class:`~repro.core.checkpoint.
        CampaignCheckpoint` after each completed day (atomically — a crash
        mid-write leaves the previous snapshot intact); ``resume_from``
        restores one and continues at its next day, producing rows
        bit-identical to the uninterrupted run.  Resuming requires the same
        campaign construction (seed, warm-up, households, backend — enforced
        via the checkpoint fingerprint) and the same ``conditions`` sequence.

        A day that raises does not discard the campaign: the exception is
        recorded under ``metadata["failed_day"]`` / ``metadata["failure"]``
        and the result returned with every completed day's rows, so a
        two-week campaign that dies on day 13 still yields twelve days of
        data (and, with ``checkpoint_path``, a snapshot to resume from).
        """
        if num_days <= 0:
            raise ValueError("num_days must be positive")
        planning_mode = self.config.planning if self.config is not None else None
        materialise_mode = self.config.materialise if self.config is not None else None
        result = CampaignResult()
        if resume_from is not None:
            start_day = self._restore_checkpoint(resume_from, result)
            if start_day >= num_days:
                return result
        else:
            start_day = 0
            # Warm up the predictor on mild reference days, in one batch.
            start = time.perf_counter()
            self.planner.observe_days(
                [self.weather_model.reference_day() for __ in range(self.warmup_days)]
            )
            result.planning_seconds += time.perf_counter() - start
        for day_index in range(start_day, num_days):
            try:
                self._run_day(
                    day_index, conditions, planning_mode, materialise_mode, result
                )
            except Exception as error:
                # A failed day degrades the campaign to a partial result
                # instead of discarding every completed day's rows.
                result.metadata["failed_day"] = day_index
                result.metadata["failure"] = f"{type(error).__name__}: {error}"
                break
            if checkpoint_path is not None:
                self._save_checkpoint(checkpoint_path, result, day_index + 1)
        return result

    def _run_day(
        self,
        day_index: int,
        conditions: Optional[Sequence[WeatherCondition]],
        planning_mode: Optional[str],
        materialise_mode: Optional[str],
        result: CampaignResult,
    ) -> None:
        """Sample, plan, negotiate and account one day onto ``result``."""
        condition = conditions[day_index % len(conditions)] if conditions else None
        weather = self.weather_model.sample(condition)
        start = time.perf_counter()
        scenario = self.planner.plan(
            weather, planning=planning_mode, materialise=materialise_mode
        )
        result.planning_seconds += time.perf_counter() - start
        if scenario is None or scenario.population.initial_overuse <= scenario.population.max_allowed_overuse:
            result.days.append(
                CampaignDay(day_index=day_index, weather=weather, negotiated=False, outcome=None)
            )
        else:
            start = time.perf_counter()
            system = LoadBalancingSystem(
                scenario,
                production=self.production,
                seed=self.seed + day_index,
                backend=self.backend,
                config=self.config,
            )
            outcome = system.run()
            result.negotiation_seconds += time.perf_counter() - start
            backend = (
                outcome.negotiation.metadata.get("backend")
                if outcome.negotiation is not None
                else None
            )
            day_metadata: dict[str, object] = {}
            if outcome.negotiation is not None:
                for key in ("rounds_mode", "kernel_cache"):
                    value = outcome.negotiation.metadata.get(key)
                    if value is not None:
                        day_metadata[key] = value
            if self.planner.planning_fallback is not None:
                day_metadata["planning_fallback"] = self.planner.planning_fallback
            result.days.append(
                CampaignDay(
                    day_index=day_index, weather=weather,
                    negotiated=outcome.negotiated, outcome=outcome,
                    backend=backend, metadata=day_metadata,
                )
            )
        # The day actually happens and the predictor learns from it.
        start = time.perf_counter()
        self.planner.observe_day(weather)
        result.planning_seconds += time.perf_counter() - start

    # -- checkpoint / resume -----------------------------------------------------

    def _fingerprint(self) -> dict[str, object]:
        """Parameters that must match between a checkpoint and a resume."""
        return {
            "seed": self.seed,
            "warmup_days": self.warmup_days,
            "num_households": len(self.planner.households),
            "backend": self.backend,
        }

    def _save_checkpoint(
        self, path: str | os.PathLike, result: CampaignResult, next_day: int
    ) -> None:
        """Snapshot everything the day loop threads between days."""
        CampaignCheckpoint(
            version=CHECKPOINT_VERSION,
            fingerprint=self._fingerprint(),
            next_day=next_day,
            days=list(result.days),
            planning_seconds=result.planning_seconds,
            negotiation_seconds=result.negotiation_seconds,
            predictor=self.planner.predictor,
            weather_rng_state=self.weather_model._random.state(),
            demand_rng_state=self.planner._demand_model._random.state(),
        ).save(path)

    def _restore_checkpoint(
        self, path: str | os.PathLike, result: CampaignResult
    ) -> int:
        """Restore a snapshot into this campaign; returns the first day to run.

        The predictor object (with its observation buffer) replaces the
        planner's, the weather and demand streams rewind to their recorded
        positions, and the accumulated days and wall-clock land on
        ``result`` — the warm-up is already inside the restored predictor,
        so the caller must skip it.
        """
        snapshot = CampaignCheckpoint.load(path)
        snapshot.validate_fingerprint(self._fingerprint())
        self.planner.predictor = snapshot.predictor
        # The memoised prediction belongs to the replaced predictor.
        self.planner._prediction_cache = None
        self.planner._demand_model._random.set_state(snapshot.demand_rng_state)
        self.weather_model._random.set_state(snapshot.weather_rng_state)
        result.days = list(snapshot.days)
        result.planning_seconds = snapshot.planning_seconds
        result.negotiation_seconds = snapshot.negotiation_seconds
        result.metadata["resumed_from_day"] = snapshot.next_day
        return snapshot.next_day
