"""Canonical planning-pipeline mode values and their validators.

The campaign pipeline is steered by a handful of small string/int knobs that
appear at several layers — :class:`~repro.api.config.EngineConfig`, the
:class:`~repro.core.planning.DayAheadPlanner`, the population constructors
and the fluent builder.  Before this module each layer hand-rolled its own
check (or skipped it), which is how a typo'd ``planning="colunmar"`` could
slip through one entry point and silently land on the scalar path.  Every
layer now funnels through the same validators, so an invalid value fails at
construction with one canonical message listing the accepted values.

This module is deliberately dependency-free (imported by both
:mod:`repro.api` and :mod:`repro.core` without cycles).
"""

from __future__ import annotations

from typing import Optional

#: Planning-path modes: ``"columnar"`` runs the batched
#: :class:`~repro.grid.fleet.HouseholdFleet` kernels, ``"scalar"`` the
#: per-household object loop (the equivalence oracle).
PLANNING_MODES: tuple[str, ...] = ("columnar", "scalar")

#: Materialisation modes of the planning → negotiation hand-off:
#: ``"eager"`` builds per-household ``CustomerSpec`` objects and dict reward
#: tables (the equivalence oracle), ``"lazy"`` feeds the negotiation kernels
#: straight from the columnar planning arrays and only materialises objects
#: if something actually asks for them.
MATERIALISE_MODES: tuple[str, ...] = ("eager", "lazy")

#: Round-evaluation modes of the negotiation fast path: ``"object"`` builds
#: per-round ``Bid`` objects and dict round tables (the equivalence oracle),
#: ``"array"`` keeps a round's bids purely as the numpy state arrays the
#: kernels already compute and evaluates the round on them — no per-round
#: object construction at all.  Sessions that cannot take the array path for
#: a given scenario (non-stock method or policy) fall back to object rounds
#: and record the effective mode in the result metadata.
ROUNDS_MODES: tuple[str, ...] = ("object", "array")


def validate_planning_mode(planning: str) -> str:
    """Return ``planning`` or raise a :class:`ValueError` naming the options."""
    if planning not in PLANNING_MODES:
        raise ValueError(
            f"unknown planning mode {planning!r}; expected one of {PLANNING_MODES}"
        )
    return planning


def validate_materialise_mode(materialise: str) -> str:
    """Return ``materialise`` or raise a :class:`ValueError` naming the options."""
    if materialise not in MATERIALISE_MODES:
        raise ValueError(
            f"unknown materialise mode {materialise!r}; "
            f"expected one of {MATERIALISE_MODES}"
        )
    return materialise


def validate_rounds_mode(rounds: str) -> str:
    """Return ``rounds`` or raise a :class:`ValueError` naming the options."""
    if rounds not in ROUNDS_MODES:
        raise ValueError(
            f"unknown rounds mode {rounds!r}; expected one of {ROUNDS_MODES}"
        )
    return rounds


def validate_history_window(history_window: Optional[int]) -> Optional[int]:
    """Return the window (``None`` = unbounded) or raise a :class:`ValueError`."""
    if history_window is None:
        return None
    window = int(history_window)
    if window < 1:
        raise ValueError(
            f"history_window must be a positive number of days or None "
            f"(unbounded), got {history_window!r}"
        )
    return window


def validate_shard_count(shards: Optional[int]) -> Optional[int]:
    """Return the shard count (``None`` = one per core) or raise a :class:`ValueError`.

    Shared by :class:`~repro.api.config.EngineConfig` and
    :class:`~repro.core.sharded_session.ShardedSession`, so a non-positive
    count fails at construction with one canonical message instead of
    propagating into a confusing worker-pool error.
    """
    if shards is None:
        return None
    count = int(shards)
    if count < 1:
        raise ValueError(
            f"shards must be a positive worker count or None (one per CPU "
            f"core), got {shards!r}"
        )
    return count


def validate_shard_threshold(shard_threshold: int) -> int:
    """Return the auto-backend sharding threshold or raise a :class:`ValueError`."""
    threshold = int(shard_threshold)
    if threshold < 1:
        raise ValueError(
            f"shard_threshold must be a positive population size, got "
            f"{shard_threshold!r}"
        )
    return threshold
