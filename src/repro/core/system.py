"""The full load-balancing pipeline.

:class:`LoadBalancingSystem` plays the role of the utility company's dynamic
load management process as a whole:

1. realise (or take) a day of household demand and predict the aggregate,
2. decide — exactly as the Utility Agent's *evaluate prediction* task does —
   whether the predicted overuse warrants a negotiation,
3. run the multi-agent negotiation through the :mod:`repro.api` engine façade
   (``backend="auto"`` by default, so large populations get the vectorized
   fast path with identical outcomes),
4. apply the awarded cut-downs to the household load profiles, and
5. account for production costs and rewards before and after.

The system therefore quantifies the economic claim behind the paper: dynamic
load management "make[s] better and more cost-effective use of electricity
production capabilities".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.results import ColumnarOutcomes, NegotiationResult, SystemResult
from repro.core.scenario import Scenario
from repro.grid.fleet import Fleet, FleetIncompatibleError, pack_fleet
from repro.grid.load_profile import LoadProfile
from repro.grid.production import ProductionModel
from repro.runtime.clock import TimeInterval

if TYPE_CHECKING:  # pragma: no cover - typing only (import would cycle via repro.api)
    from repro.api.config import EngineConfig


class LoadBalancingSystem:
    """Predict, negotiate, apply, account."""

    def __init__(
        self,
        scenario: Scenario,
        production: Optional[ProductionModel] = None,
        seed: Optional[int] = 0,
        backend: str = "auto",
        config: Optional["EngineConfig"] = None,
    ) -> None:
        self.scenario = scenario
        if production is None:
            normal = scenario.population.normal_use
            overuse = max(scenario.population.initial_overuse, 1.0)
            production = ProductionModel.two_tier(
                normal_capacity_kw=normal, peak_capacity_kw=2.0 * overuse
            )
        self.production = production
        self.seed = seed
        self.backend = backend
        self.config = config
        #: Why accounting ran the scalar per-customer path (``None`` when the
        #: columnar fleet path applied).
        self.accounting_fallback: Optional[str] = None

    # -- pipeline stages -----------------------------------------------------------

    def should_negotiate(self) -> bool:
        """The *evaluate prediction* decision: is the predicted overuse high enough?"""
        population = self.scenario.population
        return population.initial_overuse > population.max_allowed_overuse

    def negotiate(
        self, backend: Optional[str] = None, **config_overrides
    ) -> NegotiationResult:
        """Run the negotiation for the scenario through the engine façade.

        ``config_overrides`` are :class:`repro.api.EngineConfig` fields (the
        former ``NegotiationSession`` kwargs — ``check_protocol``,
        ``include_producer``, …) overriding the system's base config.  The
        system's ``seed`` always wins over the base config's (campaigns step
        it per day).
        """
        # Imported lazily: repro.api depends on repro.core's session modules.
        from repro.api import EngineConfig, run

        base = self.config if self.config is not None else EngineConfig()
        config = base.replace(seed=self.seed).replace(**config_overrides)
        return run(
            self.scenario,
            backend=backend if backend is not None else self.backend,
            config=config,
        )

    def baseline_profiles(self) -> dict[str, LoadProfile]:
        """Per-household demand profiles before any cut-down.

        For calibrated populations without household models, a flat profile at
        the customer's predicted use over the peak interval is synthesised so
        cost accounting remains possible.
        """
        population = self.scenario.population
        profiles: dict[str, LoadProfile] = {}
        interval = population.interval
        for spec in population.specs:
            if spec.household is not None:
                profiles[spec.customer_id] = spec.household.demand_profile(
                    self.scenario.weather
                )
            else:
                slots = interval.slots_per_day if interval is not None else 24
                values = [0.0] * slots
                if interval is not None:
                    for slot in interval.slots():
                        values[slot.index] = spec.predicted_use
                else:
                    values = [spec.predicted_use] * slots
                profiles[spec.customer_id] = LoadProfile(tuple(values))
        return profiles

    def apply_cutdowns(
        self,
        profiles: dict[str, LoadProfile],
        result: NegotiationResult,
        interval: Optional[TimeInterval] = None,
    ) -> dict[str, LoadProfile]:
        """Household profiles after implementing the awarded cut-downs."""
        interval = interval or self.scenario.population.interval
        if interval is None:
            raise ValueError("cannot apply cut-downs without a peak interval")
        adjusted: dict[str, LoadProfile] = {}
        for customer, profile in profiles.items():
            outcome = result.customer_outcomes.get(customer)
            cutdown = outcome.committed_cutdown if outcome is not None else 0.0
            adjusted[customer] = profile.with_cutdown_in(interval, cutdown)
        return adjusted

    # -- columnar accounting ------------------------------------------------------------

    def _accounting_fleet(self) -> Optional[Fleet]:
        """A fleet over the population's households, when one can be built.

        Populations assembled by the columnar planner / synthetic generator
        carry their fleet; otherwise one is packed on the fly (bucketed when
        the households are heterogeneous).  Calibrated populations (no
        household models) and genuinely unpackable household sets return
        ``None`` and use the scalar accounting path, with the reason recorded
        on :attr:`accounting_fallback`.
        """
        population = self.scenario.population
        if population.fleet is not None:
            return population.fleet
        specs = population.specs
        # The fleet path keys negotiation outcomes by household id, so it is
        # only sound when every spec's customer id IS its household's id (as
        # the fleet/synthetic/planner constructors guarantee); populations
        # with divergent ids keep the per-customer scalar accounting.
        if any(
            spec.household is None or spec.customer_id != spec.household.household_id
            for spec in specs
        ):
            self.accounting_fallback = (
                "population has customers without household models or with "
                "ids diverging from their household ids"
            )
            return None
        try:
            fleet = pack_fleet([spec.household for spec in specs])
        except FleetIncompatibleError as exc:
            self.accounting_fallback = str(exc)
            return None
        population.fleet = fleet
        return fleet

    # -- full pipeline ------------------------------------------------------------------

    def run(self, backend: Optional[str] = None, **config_overrides) -> SystemResult:
        """Run the full pipeline and return the accounting summary.

        Accounting (baseline aggregation, cut-down application, peak and cost
        measurement) rides the columnar fleet kernels when the population has
        household models — bit-identical to the per-household
        :meth:`baseline_profiles` / :meth:`apply_cutdowns` path, which remains
        both the public API and the fallback for calibrated populations.
        """
        fleet = self._accounting_fleet()
        if fleet is None:
            return self._run_scalar(backend, **config_overrides)
        weather = self.scenario.weather
        baseline_matrix = fleet.demand_profiles(weather)
        aggregate_before = LoadProfile.from_array(baseline_matrix.sum(axis=0))
        cost_before = self.production.cost_of_profile(aggregate_before)
        if not self.should_negotiate():
            return SystemResult(
                negotiation=None,
                negotiated=False,
                peak_before_kw=aggregate_before.peak(),
                peak_after_kw=aggregate_before.peak(),
                production_cost_before=cost_before,
                production_cost_after=cost_before,
                reward_paid=0.0,
            )
        result = self.negotiate(backend=backend, **config_overrides)
        interval = self.scenario.population.interval
        if interval is None:
            raise ValueError("cannot apply cut-downs without a peak interval")
        outcomes = result.customer_outcomes
        if (
            isinstance(outcomes, ColumnarOutcomes)
            and outcomes.customer_ids == fleet.household_ids
        ):
            # Array-round results already hold the committed cut-downs as a
            # column in population (= fleet) order: consume it directly
            # instead of materialising a CustomerOutcome per household.
            cutdowns = np.asarray(outcomes.committed_cutdowns, dtype=float)
        else:
            cutdowns = np.array(
                [
                    outcomes[customer_id].committed_cutdown
                    if customer_id in outcomes
                    else 0.0
                    for customer_id in fleet.household_ids
                ]
            )
        adjusted_matrix = np.array(baseline_matrix)
        indices = [slot.index for slot in interval.slots()]
        # Same elementwise operation as LoadProfile.with_cutdown_in.
        adjusted_matrix[:, indices] = baseline_matrix[:, indices] * (1.0 - cutdowns)[:, None]
        aggregate_after = LoadProfile.from_array(adjusted_matrix.sum(axis=0))
        cost_after = self.production.cost_of_profile(aggregate_after)
        return SystemResult(
            negotiation=result,
            negotiated=True,
            peak_before_kw=aggregate_before.peak(),
            peak_after_kw=aggregate_after.peak(),
            production_cost_before=cost_before,
            production_cost_after=cost_after,
            reward_paid=result.total_reward_paid,
        )

    def _run_scalar(self, backend: Optional[str] = None, **config_overrides) -> SystemResult:
        """The per-household accounting path (calibrated populations)."""
        baseline = self.baseline_profiles()
        aggregate_before = LoadProfile.aggregate(baseline.values())
        cost_before = self.production.cost_of_profile(aggregate_before)
        if not self.should_negotiate():
            return SystemResult(
                negotiation=None,
                negotiated=False,
                peak_before_kw=aggregate_before.peak(),
                peak_after_kw=aggregate_before.peak(),
                production_cost_before=cost_before,
                production_cost_after=cost_before,
                reward_paid=0.0,
            )
        result = self.negotiate(backend=backend, **config_overrides)
        adjusted = self.apply_cutdowns(baseline, result)
        aggregate_after = LoadProfile.aggregate(adjusted.values())
        cost_after = self.production.cost_of_profile(aggregate_after)
        return SystemResult(
            negotiation=result,
            negotiated=True,
            peak_before_kw=aggregate_before.peak(),
            peak_after_kw=aggregate_after.peak(),
            production_cost_before=cost_before,
            production_cost_after=cost_after,
            reward_paid=result.total_reward_paid,
        )
