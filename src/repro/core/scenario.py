"""Scenario definitions.

A :class:`Scenario` packages a customer population, a negotiation method and
the negotiation parameters so sessions and benchmarks can be configured in one
place.  Two scenario families are provided:

* :func:`paper_prototype_scenario` — the calibrated reproduction of the
  prototype run shown in Figures 6-9 of the paper (normal capacity 100,
  predicted usage 135, a reward of 17 for a cut-down of 0.4 in round 1
  rising to about 24.8 in round 3, final overuse around 13, and a customer
  whose requirement table makes it bid 0.2 then 0.4 then 0.4);
* :func:`synthetic_scenario` — a grid-substrate scenario with generated
  households, used by the method comparison, β-sweep, market comparison and
  scalability experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.agents.population import CustomerPopulation, PopulationConfig
from repro.grid.weather import WeatherCondition, WeatherModel, WeatherSample
from repro.negotiation.methods.base import NegotiationMethod
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.reward_table import CutdownRewardRequirements, RewardTable
from repro.negotiation.strategy import BetaController, ConstantBeta
from repro.runtime.clock import TimeInterval

#: The opening reward table of the calibrated prototype scenario.  The entry
#: for a cut-down of 0.4 is 17, matching Figure 6; the remaining entries are
#: chosen so the Figure 8 customer's first-round behaviour (highest acceptable
#: cut-down 0.2) is reproduced and the table is convex and monotone.
PAPER_INITIAL_REWARD_TABLE: dict[float, float] = {
    0.0: 0.0,
    0.1: 2.0,
    0.2: 5.0,
    0.3: 9.0,
    0.4: 17.0,
    0.5: 21.0,
    0.6: 24.0,
    0.7: 26.0,
    0.8: 27.5,
    0.9: 28.5,
    1.0: 29.0,
}

#: β and maximum reward of the calibrated prototype scenario.
PAPER_BETA: float = 2.0
PAPER_MAX_REWARD: float = 30.0
#: Normal (cheap) production capacity and the overuse the utility tolerates.
PAPER_NORMAL_USE: float = 100.0
PAPER_MAX_ALLOWED_OVERUSE: float = 15.0
#: Number of customers and their identical predicted use (totalling 135,
#: i.e. a predicted overuse of 35 as in Figure 6).
PAPER_NUM_CUSTOMERS: int = 20
PAPER_PREDICTED_USE_PER_CUSTOMER: float = 6.75
#: Requirement-table scale factors of the calibrated population: one customer
#: is exactly the Figure 8/9 customer (scale 1.0), five are moderately less
#: flexible and fourteen are much less flexible.  The mix is calibrated so the
#: predicted overuse falls from 35 to roughly 13 in three rounds.
PAPER_REQUIREMENT_SCALES: tuple[float, ...] = (1.0,) + (1.5,) * 5 + (3.5,) * 14


@dataclass
class Scenario:
    """A fully specified negotiation scenario."""

    name: str
    population: CustomerPopulation
    method: NegotiationMethod
    description: str = ""
    weather: Optional[WeatherSample] = None

    @property
    def num_customers(self) -> int:
        return len(self.population)

    @property
    def normal_use(self) -> float:
        return self.population.normal_use

    @property
    def initial_overuse(self) -> float:
        return self.population.initial_overuse

    @property
    def initial_relative_overuse(self) -> float:
        return self.population.initial_overuse / self.population.normal_use


def paper_requirement_table(scale: float = 1.0) -> CutdownRewardRequirements:
    """The Figure 8/9 requirement table scaled by ``scale``."""
    base = CutdownRewardRequirements.paper_figure_8_customer()
    if scale == 1.0:
        return base
    if scale <= 0:
        raise ValueError("scale must be positive")
    return CutdownRewardRequirements(
        requirements={c: r * scale for c, r in base.requirements.items()},
        max_feasible_cutdown=base.max_feasible_cutdown,
    )


def paper_prototype_scenario(
    beta: Optional[float] = None,
    beta_controller: Optional[BetaController] = None,
    max_reward: float = PAPER_MAX_REWARD,
    max_allowed_overuse: float = PAPER_MAX_ALLOWED_OVERUSE,
) -> Scenario:
    """The calibrated reproduction of the Figures 6-9 prototype run.

    Parameters are exposed so the β-sweep and ablation experiments can vary
    them while keeping the population fixed.
    """
    interval = TimeInterval.from_hours(17, 20)
    requirements = [paper_requirement_table(scale) for scale in PAPER_REQUIREMENT_SCALES]
    population = CustomerPopulation.calibrated(
        predicted_uses=[PAPER_PREDICTED_USE_PER_CUSTOMER] * PAPER_NUM_CUSTOMERS,
        requirements=requirements,
        normal_use=PAPER_NORMAL_USE,
        interval=interval,
        max_allowed_overuse=max_allowed_overuse,
    )
    if beta_controller is None:
        beta_controller = ConstantBeta(beta if beta is not None else PAPER_BETA)
    method = RewardTablesMethod(
        max_reward=max_reward,
        beta_controller=beta_controller,
        initial_table=RewardTable(PAPER_INITIAL_REWARD_TABLE, interval),
    )
    return Scenario(
        name="paper_prototype",
        population=population,
        method=method,
        description=(
            "Calibrated reproduction of the prototype negotiation of Section 6 "
            "(Figures 6-9): normal capacity 100, predicted usage 135, reward-table "
            "method with a constant beta."
        ),
    )


def synthetic_default_method(
    max_reward: float = 60.0, beta: float = 2.0
) -> RewardTablesMethod:
    """The calibrated default reward-tables method of synthetic scenarios.

    The synthetic populations have milder relative overuse than the
    calibrated prototype scenario, so the per-round reward increments are
    smaller; a tighter saturation threshold (relative to the reward scale)
    keeps the negotiation from stopping prematurely.  Factored out so callers
    that assemble scenarios from cached populations (the serving layer) build
    byte-for-byte the method :func:`synthetic_scenario` would.
    """
    return RewardTablesMethod(
        max_reward=max_reward,
        beta_controller=ConstantBeta(beta),
        reward_epsilon=0.005 * max_reward,
    )


def synthetic_population(
    num_households: int = 50,
    seed: int = 0,
    cold_snap: bool = True,
    planning: str = "columnar",
) -> tuple[CustomerPopulation, WeatherSample]:
    """The generated population (and its weather day) of a synthetic scenario.

    Deterministic given its arguments, and read-only during negotiations —
    which is what lets the serving layer cache one population across many
    requests while still building a *fresh* (stateful) method per request.
    """
    weather_model = WeatherModel()
    weather = (
        WeatherSample(temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD)
        if cold_snap
        else weather_model.reference_day()
    )
    config = PopulationConfig(num_households=num_households, seed=seed)
    population = CustomerPopulation.synthetic(config, weather=weather, planning=planning)
    return population, weather


def synthetic_scenario(
    num_households: int = 50,
    seed: int = 0,
    method: Optional[NegotiationMethod] = None,
    cold_snap: bool = True,
    max_reward: float = 60.0,
    beta: float = 2.0,
    planning: str = "columnar",
) -> Scenario:
    """A grid-substrate scenario with generated households.

    A cold-snap day drives heating demand up and produces an evening peak
    above the normal production capacity; the negotiation method (reward
    tables by default) is then used to shave it.

    ``planning`` selects how the population's per-customer quantities are
    computed — ``"columnar"`` (batched :class:`~repro.grid.fleet
    .HouseholdFleet` kernels, the default) or ``"scalar"`` (per-household
    loop); the two are bit-identical.
    """
    population, weather = synthetic_population(
        num_households=num_households,
        seed=seed,
        cold_snap=cold_snap,
        planning=planning,
    )
    if method is None:
        method = synthetic_default_method(max_reward=max_reward, beta=beta)
    return Scenario(
        name=f"synthetic_{num_households}",
        population=population,
        method=method,
        description=(
            f"Synthetic population of {num_households} households on a "
            f"{'severe-cold' if cold_snap else 'mild'} day."
        ),
        weather=weather,
    )
