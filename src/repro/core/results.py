"""Result value types for negotiation sessions and the load-balancing system."""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.negotiation.messages import Announcement, RewardTableAnnouncement
from repro.negotiation.protocol import NegotiationOutcome, NegotiationRecord
from repro.negotiation.termination import TerminationReason


@dataclass(frozen=True)
class CustomerOutcome:
    """What one customer ended up with."""

    customer: str
    final_bid_cutdown: float
    awarded: bool
    committed_cutdown: float
    reward: float
    surplus: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.final_bid_cutdown <= 1.0:
            raise ValueError("final bid cut-down must be in [0, 1]")
        if not 0.0 <= self.committed_cutdown <= 1.0:
            raise ValueError("committed cut-down must be in [0, 1]")


class ColumnarOutcomes(Mapping):
    """Per-customer outcomes stored as columns, materialised lazily.

    The array-native round path never builds ``CustomerOutcome`` objects up
    front: a million-household result would otherwise spend most of its time
    (and memory) on dataclasses nobody reads.  This view keeps the six
    per-customer columns as the engine's numpy arrays and behaves like the
    eager ``dict[str, CustomerOutcome]`` everywhere: lookups, iteration,
    ``items()``/``values()``/``get()`` and equality against plain dicts all
    work, constructing each :class:`CustomerOutcome` only when it is touched.
    """

    __slots__ = (
        "customer_ids",
        "final_bid_cutdowns",
        "awarded",
        "committed_cutdowns",
        "rewards",
        "surpluses",
        "_index",
    )

    def __init__(
        self,
        customer_ids: Sequence[str],
        final_bid_cutdowns: np.ndarray,
        awarded: np.ndarray,
        committed_cutdowns: np.ndarray,
        rewards: np.ndarray,
        surpluses: np.ndarray,
    ) -> None:
        self.customer_ids = list(customer_ids)
        columns = (final_bid_cutdowns, awarded, committed_cutdowns, rewards, surpluses)
        for column in columns:
            if len(column) != len(self.customer_ids):
                raise ValueError(
                    f"column length {len(column)} does not match "
                    f"{len(self.customer_ids)} customers"
                )
        self.final_bid_cutdowns = final_bid_cutdowns
        self.awarded = awarded
        self.committed_cutdowns = committed_cutdowns
        self.rewards = rewards
        self.surpluses = surpluses
        self._index: Optional[dict[str, int]] = None

    def _customer_index(self) -> dict[str, int]:
        if self._index is None:
            self._index = {
                customer: index for index, customer in enumerate(self.customer_ids)
            }
        return self._index

    def outcome_at(self, index: int) -> CustomerOutcome:
        """Materialise the outcome for the customer at one array position."""
        return CustomerOutcome(
            customer=self.customer_ids[index],
            final_bid_cutdown=float(self.final_bid_cutdowns[index]),
            awarded=bool(self.awarded[index]),
            committed_cutdown=float(self.committed_cutdowns[index]),
            reward=float(self.rewards[index]),
            surplus=float(self.surpluses[index]),
        )

    def __getitem__(self, customer: str) -> CustomerOutcome:
        try:
            index = self._customer_index()[customer]
        except KeyError:
            raise KeyError(customer) from None
        return self.outcome_at(index)

    def __iter__(self) -> Iterator[str]:
        return iter(self.customer_ids)

    def __len__(self) -> int:
        return len(self.customer_ids)

    def __contains__(self, customer: object) -> bool:
        return customer in self._customer_index()

    def __repr__(self) -> str:
        return f"ColumnarOutcomes({len(self.customer_ids)} customers)"


@dataclass
class NegotiationResult:
    """Outcome of one negotiation session."""

    scenario_name: str
    method_name: str
    record: NegotiationRecord
    #: Per-customer outcomes: an eager ``dict`` on the object round path, a
    #: lazy :class:`ColumnarOutcomes` view on the array round path.  Both
    #: honour the same mapping API and compare equal when their contents do.
    customer_outcomes: Mapping[str, CustomerOutcome]
    total_reward_paid: float
    messages_sent: int
    simulation_rounds: int
    #: How many households were degraded by substrate faults: at least one
    #: of their rounds was evaluated without their bid (crash, lost message
    #: or over-deadline delay — the protocol's silent-reject semantics).
    #: Always ``0`` on fault-free runs.
    degraded_households: int = 0
    #: Execution metadata recorded by :func:`repro.api.run` — notably
    #: ``metadata["backend"]``, the name of the engine backend that actually
    #: ran the negotiation, and ``metadata["faults"]``, the fault plan and
    #: injected-fault counters when a chaos run was configured.  Empty when a
    #: session is driven directly without faults.
    metadata: dict[str, object] = field(default_factory=dict)

    # -- headline metrics ------------------------------------------------------

    @property
    def rounds(self) -> int:
        """Number of negotiation rounds (announcement/bid exchanges)."""
        return self.record.num_rounds

    @property
    def initial_overuse(self) -> float:
        return self.record.initial_overuse

    @property
    def final_overuse(self) -> float:
        if self.record.final_overuse is None:
            raise ValueError("negotiation did not finish")
        return self.record.final_overuse

    @property
    def overuse_reduction(self) -> float:
        """Absolute overuse removed by the negotiation."""
        return self.initial_overuse - self.final_overuse

    @property
    def peak_reduction_fraction(self) -> float:
        """Fraction of the initial overuse that was removed."""
        if self.initial_overuse <= 0:
            return 0.0
        return max(0.0, self.overuse_reduction) / self.initial_overuse

    @property
    def peak_removed(self) -> bool:
        return self.record.outcome is NegotiationOutcome.PEAK_REMOVED

    @property
    def termination_reason(self) -> TerminationReason:
        return self.record.termination_reason

    @property
    def participation_rate(self) -> float:
        """Fraction of customers with a positive committed cut-down."""
        outcomes = self.customer_outcomes
        if not outcomes:
            return 0.0
        if isinstance(outcomes, ColumnarOutcomes):
            active = int(np.count_nonzero(outcomes.committed_cutdowns > 0))
            return active / len(outcomes)
        active = sum(1 for outcome in outcomes.values() if outcome.committed_cutdown > 0)
        return active / len(outcomes)

    @property
    def total_customer_surplus(self) -> float:
        outcomes = self.customer_outcomes
        if isinstance(outcomes, ColumnarOutcomes):
            if not len(outcomes):
                return 0.0
            # cumsum is strictly sequential, so this equals the eager path's
            # left-to-right sum() bit for bit.
            return float(np.cumsum(outcomes.surpluses)[-1])
        return sum(outcome.surplus for outcome in outcomes.values())

    @property
    def reward_per_unit_overuse_removed(self) -> float:
        """Reward expenditure per unit of overuse removed (cost effectiveness)."""
        removed = self.overuse_reduction
        if removed <= 0:
            return float("inf") if self.total_reward_paid > 0 else 0.0
        return self.total_reward_paid / removed

    # -- per-round views (for the figure benches) -----------------------------------

    def announced_tables(self) -> list[Announcement]:
        """The announcement of every round, in order."""
        return [round_record.announcement for round_record in self.record.rounds]

    def reward_trajectory(self, cutdown: float) -> list[float]:
        """The announced reward for one cut-down fraction, per round.

        Only meaningful for the reward-tables method; other announcement types
        are skipped.
        """
        trajectory = []
        for round_record in self.record.rounds:
            announcement = round_record.announcement
            if isinstance(announcement, RewardTableAnnouncement):
                trajectory.append(announcement.table.reward_for(cutdown))
        return trajectory

    def overuse_trajectory(self) -> list[float]:
        """Predicted overuse before the first round and after each round."""
        return self.record.overuse_trajectory

    def customer_bid_trajectory(self, customer: str) -> list[float]:
        """The cut-down bid by one customer in every round."""
        trajectory = []
        for round_record in self.record.rounds:
            bid = round_record.bids.get(customer)
            trajectory.append(getattr(bid, "cutdown", 0.0) if bid is not None else 0.0)
        return trajectory

    def summary(self) -> dict[str, object]:
        """A flat summary dictionary (used by reports and benchmarks)."""
        return {
            "scenario": self.scenario_name,
            "method": self.method_name,
            "rounds": self.rounds,
            "initial_overuse": self.initial_overuse,
            "final_overuse": self.final_overuse,
            "peak_reduction_fraction": self.peak_reduction_fraction,
            "participation_rate": self.participation_rate,
            "total_reward_paid": self.total_reward_paid,
            "total_customer_surplus": self.total_customer_surplus,
            "messages_sent": self.messages_sent,
            "termination_reason": self.termination_reason.value,
        }


@dataclass
class SystemResult:
    """Outcome of a full load-balancing pipeline run (predict -> negotiate -> apply)."""

    negotiation: Optional[NegotiationResult]
    negotiated: bool
    peak_before_kw: float
    peak_after_kw: float
    production_cost_before: float
    production_cost_after: float
    reward_paid: float

    @property
    def peak_reduction_kw(self) -> float:
        return self.peak_before_kw - self.peak_after_kw

    @property
    def production_savings(self) -> float:
        return self.production_cost_before - self.production_cost_after

    @property
    def net_utility_benefit(self) -> float:
        """Production savings minus the rewards paid out."""
        return self.production_savings - self.reward_paid

    def summary(self) -> dict[str, float | bool]:
        return {
            "negotiated": self.negotiated,
            "peak_before_kw": self.peak_before_kw,
            "peak_after_kw": self.peak_after_kw,
            "peak_reduction_kw": self.peak_reduction_kw,
            "production_cost_before": self.production_cost_before,
            "production_cost_after": self.production_cost_after,
            "production_savings": self.production_savings,
            "reward_paid": self.reward_paid,
            "net_utility_benefit": self.net_utility_benefit,
        }
