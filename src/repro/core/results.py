"""Result value types for negotiation sessions and the load-balancing system."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.negotiation.messages import Announcement, RewardTableAnnouncement
from repro.negotiation.protocol import NegotiationOutcome, NegotiationRecord
from repro.negotiation.termination import TerminationReason


@dataclass(frozen=True)
class CustomerOutcome:
    """What one customer ended up with."""

    customer: str
    final_bid_cutdown: float
    awarded: bool
    committed_cutdown: float
    reward: float
    surplus: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.final_bid_cutdown <= 1.0:
            raise ValueError("final bid cut-down must be in [0, 1]")
        if not 0.0 <= self.committed_cutdown <= 1.0:
            raise ValueError("committed cut-down must be in [0, 1]")


@dataclass
class NegotiationResult:
    """Outcome of one negotiation session."""

    scenario_name: str
    method_name: str
    record: NegotiationRecord
    customer_outcomes: dict[str, CustomerOutcome]
    total_reward_paid: float
    messages_sent: int
    simulation_rounds: int
    #: How many households were degraded by substrate faults: at least one
    #: of their rounds was evaluated without their bid (crash, lost message
    #: or over-deadline delay — the protocol's silent-reject semantics).
    #: Always ``0`` on fault-free runs.
    degraded_households: int = 0
    #: Execution metadata recorded by :func:`repro.api.run` — notably
    #: ``metadata["backend"]``, the name of the engine backend that actually
    #: ran the negotiation, and ``metadata["faults"]``, the fault plan and
    #: injected-fault counters when a chaos run was configured.  Empty when a
    #: session is driven directly without faults.
    metadata: dict[str, object] = field(default_factory=dict)

    # -- headline metrics ------------------------------------------------------

    @property
    def rounds(self) -> int:
        """Number of negotiation rounds (announcement/bid exchanges)."""
        return self.record.num_rounds

    @property
    def initial_overuse(self) -> float:
        return self.record.initial_overuse

    @property
    def final_overuse(self) -> float:
        if self.record.final_overuse is None:
            raise ValueError("negotiation did not finish")
        return self.record.final_overuse

    @property
    def overuse_reduction(self) -> float:
        """Absolute overuse removed by the negotiation."""
        return self.initial_overuse - self.final_overuse

    @property
    def peak_reduction_fraction(self) -> float:
        """Fraction of the initial overuse that was removed."""
        if self.initial_overuse <= 0:
            return 0.0
        return max(0.0, self.overuse_reduction) / self.initial_overuse

    @property
    def peak_removed(self) -> bool:
        return self.record.outcome is NegotiationOutcome.PEAK_REMOVED

    @property
    def termination_reason(self) -> TerminationReason:
        return self.record.termination_reason

    @property
    def participation_rate(self) -> float:
        """Fraction of customers with a positive committed cut-down."""
        if not self.customer_outcomes:
            return 0.0
        active = sum(
            1 for outcome in self.customer_outcomes.values() if outcome.committed_cutdown > 0
        )
        return active / len(self.customer_outcomes)

    @property
    def total_customer_surplus(self) -> float:
        return sum(outcome.surplus for outcome in self.customer_outcomes.values())

    @property
    def reward_per_unit_overuse_removed(self) -> float:
        """Reward expenditure per unit of overuse removed (cost effectiveness)."""
        removed = self.overuse_reduction
        if removed <= 0:
            return float("inf") if self.total_reward_paid > 0 else 0.0
        return self.total_reward_paid / removed

    # -- per-round views (for the figure benches) -----------------------------------

    def announced_tables(self) -> list[Announcement]:
        """The announcement of every round, in order."""
        return [round_record.announcement for round_record in self.record.rounds]

    def reward_trajectory(self, cutdown: float) -> list[float]:
        """The announced reward for one cut-down fraction, per round.

        Only meaningful for the reward-tables method; other announcement types
        are skipped.
        """
        trajectory = []
        for round_record in self.record.rounds:
            announcement = round_record.announcement
            if isinstance(announcement, RewardTableAnnouncement):
                trajectory.append(announcement.table.reward_for(cutdown))
        return trajectory

    def overuse_trajectory(self) -> list[float]:
        """Predicted overuse before the first round and after each round."""
        return self.record.overuse_trajectory

    def customer_bid_trajectory(self, customer: str) -> list[float]:
        """The cut-down bid by one customer in every round."""
        trajectory = []
        for round_record in self.record.rounds:
            bid = round_record.bids.get(customer)
            trajectory.append(getattr(bid, "cutdown", 0.0) if bid is not None else 0.0)
        return trajectory

    def summary(self) -> dict[str, object]:
        """A flat summary dictionary (used by reports and benchmarks)."""
        return {
            "scenario": self.scenario_name,
            "method": self.method_name,
            "rounds": self.rounds,
            "initial_overuse": self.initial_overuse,
            "final_overuse": self.final_overuse,
            "peak_reduction_fraction": self.peak_reduction_fraction,
            "participation_rate": self.participation_rate,
            "total_reward_paid": self.total_reward_paid,
            "total_customer_surplus": self.total_customer_surplus,
            "messages_sent": self.messages_sent,
            "termination_reason": self.termination_reason.value,
        }


@dataclass
class SystemResult:
    """Outcome of a full load-balancing pipeline run (predict -> negotiate -> apply)."""

    negotiation: Optional[NegotiationResult]
    negotiated: bool
    peak_before_kw: float
    peak_after_kw: float
    production_cost_before: float
    production_cost_after: float
    reward_paid: float

    @property
    def peak_reduction_kw(self) -> float:
        return self.peak_before_kw - self.peak_after_kw

    @property
    def production_savings(self) -> float:
        return self.production_cost_before - self.production_cost_after

    @property
    def net_utility_benefit(self) -> float:
        """Production savings minus the rewards paid out."""
        return self.production_savings - self.reward_paid

    def summary(self) -> dict[str, float | bool]:
        return {
            "negotiated": self.negotiated,
            "peak_before_kw": self.peak_before_kw,
            "peak_after_kw": self.peak_after_kw,
            "peak_reduction_kw": self.peak_reduction_kw,
            "production_cost_before": self.production_cost_before,
            "production_cost_after": self.production_cost_after,
            "production_savings": self.production_savings,
            "reward_paid": self.reward_paid,
            "net_utility_benefit": self.net_utility_benefit,
        }
