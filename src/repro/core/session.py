"""Negotiation sessions: running one negotiation as a multi-agent simulation.

A :class:`NegotiationSession` takes a :class:`~repro.core.scenario.Scenario`,
builds the Utility Agent, the Customer Agents (and optionally the Producer
Agent, External World and Resource Consumer Agents), wires them onto a
round-synchronous :class:`~repro.runtime.simulation.Simulation` and runs the
negotiation to completion.  The outcome is a
:class:`~repro.core.results.NegotiationResult`.
"""

from __future__ import annotations

from typing import Optional

from repro.agents.customer_agent import CustomerAgent
from repro.agents.external_world import ExternalWorld
from repro.agents.producer_agent import ProducerAgent
from repro.agents.utility_agent import UtilityAgent
from repro.core.results import CustomerOutcome, NegotiationResult
from repro.core.scenario import Scenario
from repro.grid.production import ProductionModel
from repro.negotiation.messages import Award
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.simulation import Simulation


class NegotiationSession:
    """Builds and runs the multi-agent negotiation for one scenario."""

    def __init__(
        self,
        scenario: Scenario,
        seed: Optional[int] = 0,
        include_producer: bool = False,
        include_external_world: bool = False,
        with_resource_consumers: bool = False,
        max_simulation_rounds: int = 200,
        check_protocol: bool = True,
        retain_message_log: bool = True,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        self.include_producer = include_producer
        self.include_external_world = include_external_world
        self.with_resource_consumers = with_resource_consumers
        self.max_simulation_rounds = max_simulation_rounds
        self.check_protocol = check_protocol
        self.retain_message_log = retain_message_log
        self.fault_plan = fault_plan
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self.simulation: Optional[Simulation] = None
        self.utility_agent: Optional[UtilityAgent] = None
        self.customer_agents: list[CustomerAgent] = []

    # -- construction ----------------------------------------------------------------

    def build(self) -> Simulation:
        """Instantiate agents and the simulation (idempotent)."""
        if self.simulation is not None:
            return self.simulation
        scenario = self.scenario
        simulation = Simulation(
            seed=self.seed,
            max_rounds=self.max_simulation_rounds,
            retain_message_log=self.retain_message_log,
            fault_injector=self.fault_injector,
        )

        self.customer_agents = scenario.population.build_customer_agents(
            scenario.method, with_resource_consumers=self.with_resource_consumers
        )
        producer_name = None
        world_name = None
        extra_participants = []
        if self.include_producer:
            production = ProductionModel.two_tier(
                normal_capacity_kw=scenario.population.normal_use,
                peak_capacity_kw=max(scenario.population.initial_overuse, 1.0) * 2,
            )
            producer = ProducerAgent(production)
            producer_name = producer.name
            extra_participants.append(producer)
        if self.include_external_world:
            world = ExternalWorld(weather=scenario.weather)
            world_name = world.name
            extra_participants.append(world)

        self.utility_agent = UtilityAgent(
            context=scenario.population.utility_context(),
            method=scenario.method,
            customer_agent_names=[agent.name for agent in self.customer_agents],
            conversation_id=f"negotiation_{scenario.name}",
            producer_agent=producer_name,
            external_world=world_name,
            check_protocol=self.check_protocol,
            bid_deadline_rounds=(
                self.fault_plan.bid_deadline_rounds
                if self.fault_plan is not None
                else None
            ),
        )
        if self.fault_injector is not None:
            # Only customer agents crash-stop; the Utility Agent is the
            # run's coordinator (crashing it would just stall the clock, not
            # exercise degradation).
            self.fault_injector.set_crashable(
                agent.name for agent in self.customer_agents
            )

        simulation.add_participant(self.utility_agent)
        for agent in self.customer_agents:
            simulation.add_participant(agent)
            for consumer in agent.resource_consumers:
                simulation.add_participant(consumer)
        for participant in extra_participants:
            simulation.add_participant(participant)
        self.simulation = simulation
        return simulation

    # -- execution ---------------------------------------------------------------------

    def run(self) -> NegotiationResult:
        """Run the negotiation to completion and return the result."""
        simulation = self.build()
        utility_agent = self.utility_agent
        if utility_agent is None:
            raise RuntimeError(
                "NegotiationSession.build() did not create a Utility Agent; "
                "the session cannot run"
            )
        report = simulation.run(stop_when=lambda: utility_agent.finished)
        return self._collect_result(report.rounds_executed)

    def _collect_result(self, simulation_rounds: int) -> NegotiationResult:
        if self.utility_agent is None or self.simulation is None:
            raise RuntimeError("the session must be built before collecting results")
        utility = self.utility_agent
        outcomes: dict[str, CustomerOutcome] = {}
        for agent in self.customer_agents:
            customer = agent.customer_id
            award = utility.awards.get(customer)
            final_bid = agent.bids_as_cutdowns()[-1] if agent.bid_history else 0.0
            outcomes[customer] = CustomerOutcome(
                customer=customer,
                final_bid_cutdown=final_bid,
                awarded=award.accepted if award is not None else False,
                committed_cutdown=award.committed_cutdown if award is not None and award.accepted else 0.0,
                reward=award.reward if award is not None and award.accepted else 0.0,
                surplus=self._realised_surplus(agent, award),
            )
        result = NegotiationResult(
            scenario_name=self.scenario.name,
            method_name=self.scenario.method.name,
            record=utility.record,
            customer_outcomes=outcomes,
            total_reward_paid=utility.total_reward_paid,
            messages_sent=self.simulation.bus.message_count(),
            simulation_rounds=simulation_rounds,
            degraded_households=len(utility.degraded_customers),
        )
        if self.fault_injector is not None:
            result.metadata["faults"] = self.fault_injector.report()
        return result

    def _realised_surplus(self, agent: CustomerAgent, award: Optional[Award]) -> float:
        """Reward minus monetised discomfort, from the authoritative award.

        Same formula as :meth:`CustomerAgent.realised_surplus`, but computed
        from the Utility Agent's award record rather than the agent's own
        copy: a customer whose award *message* was dropped or delayed (or who
        crash-stopped through the final round) still settles at the cut-down
        it is contractually committed to.  Fault-free, the agent's copy is
        the identical object, so the two computations agree bit for bit.
        """
        if award is None or not award.accepted:
            return 0.0
        discomfort = agent.context.requirements.interpolated_requirement(
            award.committed_cutdown
        )
        if discomfort == float("inf"):
            return award.reward
        return award.reward - discomfort
