"""The negotiation fast path: vectorized sessions for large populations.

:class:`FastSession` runs the same negotiation as
:class:`~repro.core.session.NegotiationSession` — same announcement methods,
same monotonic concession protocol, same termination conditions — but replaces
the per-customer agent objects and per-delivery message objects with one
:class:`~repro.agents.vectorized.VectorizedPopulation` whose bid decisions are
evaluated in batched numpy calls.  The utility side of each round (overuse
prediction, reward escalation, termination, awards) is delegated to the very
same :class:`~repro.negotiation.methods.base.NegotiationMethod` object the
object path uses, so round-by-round behaviour is identical by construction.

**Equivalence contract.**  For a fixed seed, ``FastSession(scenario).run()``
returns the same rounds, bids, message counts, awards and
:class:`~repro.core.results.NegotiationResult` as
``NegotiationSession(scenario).run()``.  Message *counts* are maintained as
streaming per-performative counters (one announcement and one bid per
customer per round, one award/reject per customer at the end) without
materialising message objects — mirroring the counter semantics of
:class:`~repro.runtime.messaging.MessageBus`.

**When to use which path.**  The object path exercises the full multi-agent
machinery (DESIRE models, resource consumers, producer/world information
flows, message-level traces) and should stay the reference for paper-facing
figures; the fast path is for scale — population sweeps, parameter searches
and the 10k-household scalability trajectory.  It supports the negotiation
core only: no producer agent, no external world, no resource consumers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agents.vectorized import VectorizedPopulation
from repro.core.modes import validate_rounds_mode
from repro.core.results import ColumnarOutcomes, CustomerOutcome, NegotiationResult
from repro.core.scenario import Scenario
from repro.negotiation.messages import Award, Bid, CutdownBid, OfferResponse, QuantityBid
from repro.negotiation.methods.base import ArrayRoundEvaluation, RoundEvaluation
from repro.negotiation.methods.offer import OfferMethod
from repro.negotiation.methods.request_for_bids import RequestForBidsMethod
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.protocol import (
    MonotonicConcessionProtocol,
    NegotiationRecord,
    RoundRecord,
)
from repro.negotiation.strategy import (
    ExpectedGainBidding,
    HighestAcceptableCutdownBidding,
)
from repro.negotiation.termination import TerminationReason
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.messaging import Performative


class FastSession:
    """Vectorized drop-in for :class:`~repro.core.session.NegotiationSession`.

    Parameters mirror the object path's core configuration.  ``seed`` is kept
    for signature compatibility: the negotiation itself is deterministic (no
    randomness is drawn during a run), exactly as in the object path.
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: Optional[int] = 0,
        max_simulation_rounds: int = 200,
        check_protocol: bool = True,
        retain_round_bids: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        rounds: str = "object",
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        self.max_simulation_rounds = max_simulation_rounds
        self.check_protocol = check_protocol
        self.fault_plan = fault_plan
        #: Round execution mode.  ``"object"`` materialises every round's bid
        #: objects (the reference semantics); ``"array"`` keeps a round's bids
        #: as the numpy state arrays the kernels already compute and runs the
        #: utility side through the methods' array contracts — bit-identical
        #: results with zero per-round ``Bid`` construction.  The session
        #: falls back to object rounds (recorded in
        #: ``result.metadata["rounds_mode"]``) when the method, its policies
        #: or the population cannot honour the array contract.
        self.rounds = validate_rounds_mode(rounds)
        #: Effective mode for the current run, decided at :meth:`start`.
        self._array_rounds = False
        #: Deterministic chaos: drives the per-round fault masks that mirror
        #: the object path's message/crash faults on the batched exchange.
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        #: Per customer, whether any round was evaluated without their bid.
        self._degraded_ever: Optional[np.ndarray] = None
        #: Whether each RoundRecord keeps its per-customer bid objects.  The
        #: vectorized counterpart of the bus's log retention: at 100k
        #: households a round's bids are ~100k objects, and a multi-week
        #: campaign that only reads the accounting rows never looks at them.
        #: Overuse bookkeeping, awards and outcomes are unaffected.
        self.retain_round_bids = retain_round_bids
        self.population: Optional[VectorizedPopulation] = None
        self.protocol: Optional[MonotonicConcessionProtocol] = None
        self.record: Optional[NegotiationRecord] = None
        #: Streaming per-performative counters (mirrors MessageBus semantics).
        self.message_counts: dict[Performative, int] = {}
        self._messages_sent = 0
        self._context = None
        self._has_run = False
        #: Stepwise execution state — see :meth:`start`.  ``run()`` drives
        #: these same steps to completion; a lockstep coordinator (the serving
        #: layer's request coalescer) drives many sessions' steps interleaved.
        self._phase = "new"
        self._result: Optional[NegotiationResult] = None

    # -- construction ------------------------------------------------------------

    def build(self) -> VectorizedPopulation:
        """Instantiate the vectorized population, protocol and record (idempotent).

        Mirrors :meth:`NegotiationSession.build`: calling it more than once
        returns the already-built population instead of resetting negotiation
        state.
        """
        if self.population is not None:
            return self.population
        return self._install_population(
            VectorizedPopulation.from_population(self.scenario.population)
        )

    def _install_population(
        self, population: VectorizedPopulation
    ) -> VectorizedPopulation:
        """Adopt a pre-built population and reset the negotiation bookkeeping.

        The seam that lets a coordinator hand this session a *view* into a
        larger array arena (a :meth:`VectorizedPopulation.slice` of a batch
        of coalesced requests) instead of a privately packed population.  The
        kernels are per-row, so running on a shared-arena slice is
        bit-identical to running on a standalone packing.
        """
        scenario = self.scenario
        self.population = population
        self._context = scenario.population.utility_context()
        self.protocol = MonotonicConcessionProtocol(strict=self.check_protocol)
        self.record = NegotiationRecord(
            conversation_id=f"negotiation_{scenario.name}",
            normal_use=self._context.normal_use,
            initial_overuse=self._context.initial_overuse,
        )
        self.message_counts = {}
        self._messages_sent = 0
        return self.population

    # -- message accounting ------------------------------------------------------

    def _count_messages(self, performative: Performative, count: int) -> None:
        if count <= 0:
            return
        self.message_counts[performative] = (
            self.message_counts.get(performative, 0) + count
        )
        self._messages_sent += count

    def message_count(self) -> int:
        """Total messages the object path would have sent (streaming counter)."""
        return self._messages_sent

    def messages_by_performative(self) -> dict[Performative, int]:
        """Histogram of the messages the object path would have sent."""
        return dict(self.message_counts)

    # -- customer side (batched) ---------------------------------------------------

    def _respond_all(
        self,
        announcement,
        state: dict,
        suppressed: Optional[np.ndarray] = None,
        materialise: bool = True,
    ) -> Optional[list[Bid]]:
        """Every customer's bid for one announcement, in population order.

        Dispatches to the batched kernels for the stock reward-table bidding
        policies, the offer method's yes/no evaluation and the
        request-for-bids method; any other method or policy falls back to
        per-customer scalar ``method.respond`` calls (still message-free, so
        still much faster than the object path).

        ``suppressed`` marks customers that never saw this round's
        announcement (crashed agent or lost message under fault injection):
        their negotiation state does not advance — their entry holds the
        previous round's value, exactly like an object-path agent whose
        mailbox stayed empty.  ``None`` (the fault-free default) leaves every
        code path untouched.

        ``materialise=False`` (array rounds) updates the numpy bid state and
        returns ``None`` without building any ``Bid`` objects — the state
        arrays *are* the round's bids.  The state update itself is identical
        in both modes, so the modes cannot drift.
        """
        population = self.population
        method = self.scenario.method
        round_number = announcement.round_number
        if isinstance(method, RewardTablesMethod):
            candidates = self._cutdown_candidates(announcement)
            previous = state.get("cutdowns")
            if previous is not None:
                candidates = np.maximum(candidates, previous)
            if suppressed is not None and suppressed.any():
                held = previous if previous is not None else np.zeros(len(candidates))
                candidates = np.where(suppressed, held, candidates)
            state["cutdowns"] = candidates
            if not materialise:
                return None
            return [
                CutdownBid(
                    customer=customer,
                    round_number=round_number,
                    cutdown=float(cutdown),
                )
                for customer, cutdown in zip(population.customer_ids, candidates)
            ]
        if isinstance(method, OfferMethod):
            accepts = population.offer_acceptances(announcement, method.peak_hours)
            state["accepts"] = accepts
            if not materialise:
                return None
            return [
                OfferResponse(
                    customer=customer,
                    round_number=round_number,
                    accept=bool(accept),
                )
                for customer, accept in zip(population.customer_ids, accepts)
            ]
        if isinstance(method, RequestForBidsMethod):
            current = state.get("needs")
            if current is None:
                current = population.predicted_uses.copy()
            needs = population.step_quantity_bids(
                current,
                method.step_fraction,
                method.peak_hours,
                announcement.tariff.normal_price,
            )
            if suppressed is not None and suppressed.any():
                needs = np.where(suppressed, current, needs)
            state["needs"] = needs
            if not materialise:
                return None
            return [
                QuantityBid(
                    customer=customer,
                    round_number=round_number,
                    needed_use=float(needed),
                )
                for customer, needed in zip(population.customer_ids, needs)
            ]
        if not materialise:
            # Array rounds are gated on supports_array_rounds(), which is
            # False for anything the stock branches above do not cover.
            raise RuntimeError(
                "array rounds reached the generic respond fallback; "
                f"method {method.name!r} does not support them"
            )
        # Generic fallback: scalar respond per customer, still message-free.
        if "contexts" not in state:
            state["contexts"] = self.scenario.population.customer_contexts()
        contexts = state["contexts"]
        previous_bids = state.get("bids", [None] * len(population))
        if suppressed is None or not suppressed.any():
            bids = [
                method.respond(announcement, context, previous)
                for context, previous in zip(contexts, previous_bids)
            ]
        else:
            bids = [
                previous
                if held
                else method.respond(announcement, context, previous)
                for held, context, previous in zip(suppressed, contexts, previous_bids)
            ]
        state["bids"] = bids
        return bids

    def _cutdown_candidates(self, announcement) -> np.ndarray:
        """Every customer's candidate cut-down for one reward-table round.

        The kernel dispatch behind the reward-table branch of
        :meth:`_respond_all`, isolated so a coalescing coordinator can
        substitute a row slice of a *fused* kernel evaluation computed once
        over several requests' combined population (bit-identical, because
        the kernels are per-row).
        """
        population = self.population
        policy = self.scenario.method.bidding_policy
        policy_type = type(policy)
        if policy_type is HighestAcceptableCutdownBidding:
            return population.highest_acceptable_cutdowns(announcement.table)
        if policy_type is ExpectedGainBidding:
            return population.expected_gain_cutdowns(announcement.table)
        return np.array(
            [
                policy.choose_cutdown(announcement.table, requirements, None)
                for requirements in population.requirements
            ]
        )

    def _check_bid_concession(
        self, bids: list[Bid], previous: Optional[list[Bid]]
    ) -> None:
        """Vectorized stand-in for the protocol's per-bid concession check."""
        if previous is None:
            return
        if self.fault_injector is None:
            # Fault-free, both lists cover the full population in order, so
            # the positional pairing is exact (and cheap on the hot path).
            pairs = zip(previous, bids)
        else:
            # Under degradation either round may be missing customers; match
            # by customer so partial rounds never compare strangers.
            earlier_by_customer = {
                bid.customer: bid for bid in previous if isinstance(bid, CutdownBid)
            }
            pairs = (
                (earlier_by_customer.get(bid.customer), bid)
                for bid in bids
                if isinstance(bid, CutdownBid)
            )
        for earlier, current in pairs:
            if (
                isinstance(earlier, CutdownBid)
                and isinstance(current, CutdownBid)
                and current.cutdown < earlier.cutdown
            ):
                self.protocol._record_violation(
                    f"customer {current.customer!r} retreated from cut-down "
                    f"{earlier.cutdown} to {current.cutdown}"
                )

    # -- fault-aware exchange -------------------------------------------------------

    def _exchange(self, announcement, state: dict) -> tuple[list[Bid], list[Bid]]:
        """One announcement → bids exchange: ``(all_bids, delivered_bids)``.

        ``all_bids`` has one entry per customer (the population-order bid
        state, used for final-bid reporting); ``delivered_bids`` is the
        subset that actually reached the utility side in time and enters the
        round evaluation.  Fault-free — or with a zero-rate plan — the two
        are the same list and the message counters advance exactly as the
        object path's bus counters do.
        """
        population_size = len(self.population)
        injector = self.fault_injector
        if injector is None or not injector.fast_path_faults:
            bids = self._respond_all(announcement, state)
            self._count_messages(Performative.ANNOUNCE, population_size)
            self._count_messages(Performative.BID, population_size)
            return bids, bids
        faults = injector.customer_round_masks(
            population_size, announcement.round_number
        )
        suppressed = faults.suppressed
        bids = self._respond_all(announcement, state, suppressed=suppressed)
        undelivered = faults.undelivered
        if self._degraded_ever is None:
            self._degraded_ever = undelivered.copy()
        else:
            self._degraded_ever |= undelivered
        delivered = [
            bid for bid, lost in zip(bids, undelivered) if not lost and bid is not None
        ]
        # Mirror the bus's counters: announcements that were permanently lost
        # and bids that were never sent (suppressed customer) or dropped in
        # flight are not traffic; delayed bids were sent and count.
        self._count_messages(
            Performative.ANNOUNCE, population_size - int(faults.announce_lost.sum())
        )
        self._count_messages(
            Performative.BID,
            population_size
            - int(suppressed.sum())
            - int((faults.bid_lost & ~suppressed).sum()),
        )
        return bids, delivered

    def _exchange_arrays(self, announcement, state: dict) -> Optional[np.ndarray]:
        """Array-round sibling of :meth:`_exchange`: bids stay numpy state.

        Advances the bid-state arrays (via ``_respond_all(materialise=False)``)
        and returns the round's ``undelivered`` mask — ``None`` on the
        fault-free path, where every bid reaches the utility side.  Message
        counters and the degradation ledger advance exactly as in
        :meth:`_exchange`; the fault masks are drawn from the same
        ``(seed, stream, round)`` streams, so an array run and an object run
        of the same plan see identical faults.
        """
        population_size = len(self.population)
        injector = self.fault_injector
        if injector is None or not injector.fast_path_faults:
            self._respond_all(announcement, state, materialise=False)
            self._count_messages(Performative.ANNOUNCE, population_size)
            self._count_messages(Performative.BID, population_size)
            return None
        faults = injector.customer_round_masks(
            population_size, announcement.round_number
        )
        suppressed = faults.suppressed
        self._respond_all(
            announcement, state, suppressed=suppressed, materialise=False
        )
        undelivered = faults.undelivered
        if self._degraded_ever is None:
            self._degraded_ever = undelivered.copy()
        else:
            self._degraded_ever |= undelivered
        self._count_messages(
            Performative.ANNOUNCE, population_size - int(faults.announce_lost.sum())
        )
        self._count_messages(
            Performative.BID,
            population_size
            - int(suppressed.sum())
            - int((faults.bid_lost & ~suppressed).sum()),
        )
        return undelivered

    # -- execution -----------------------------------------------------------------
    #
    # The run loop is a three-phase state machine so that a coordinator can
    # interleave many sessions in lockstep (the serving layer's request
    # coalescing) while ``run()`` remains the single-session driver:
    #
    #   start() ── trivial overuse ──────────────────────────────▶ "done"
    #      │
    #      ▼
    #   "exchange"  ──step_exchange()──▶  "advance"  ──step_advance()──▶ ...
    #      ▲                                  │
    #      └──── next announcement ───────────┘        (loop exit → "done")
    #
    # Each step performs exactly the operations of the former monolithic loop
    # in the same order, so the refactor is behaviour-preserving by
    # construction (and pinned by the object-path equivalence suite).

    @property
    def phase(self) -> str:
        """Stepwise execution phase: ``new``, ``exchange``, ``advance`` or ``done``."""
        return self._phase

    @property
    def result(self) -> Optional[NegotiationResult]:
        """The collected result once :attr:`phase` is ``"done"``, else ``None``."""
        return self._result

    @property
    def pending_announcement(self):
        """The announcement awaiting its bid exchange (``phase == "exchange"``)."""
        return self._announcement if self._phase == "exchange" else None

    def rounds_completed(self) -> int:
        """Evaluated negotiation rounds so far (progress observability)."""
        return len(self.record.rounds) if self.record is not None else 0

    def start(self) -> None:
        """Begin stepwise execution: build, guard re-runs, open round 1.

        Ends in phase ``"exchange"`` (the initial announcement awaits its
        bids) or — when the initial overuse is already acceptable — directly
        in ``"done"`` with :attr:`result` populated, mirroring the object
        path's Utility Agent finishing in its first step.
        """
        if self._has_run:
            raise RuntimeError(
                "this FastSession already ran; create a new session to "
                "negotiate again"
            )
        self._has_run = True
        population = self.build()
        context = self._context
        if context is None:
            raise RuntimeError("FastSession.build() did not produce a utility context")
        num_customers = len(population)
        self._state: dict = {}
        self._previous_delivered: Optional[list[Bid]] = None
        self._round_number = 0
        self._simulation_rounds = 1
        self._awards: dict[str, Award] = {}
        self._finished = False
        self._bids: list[Bid] = []
        self._delivered: list[Bid] = []
        # Array-round state: the pending undelivered mask, the previous
        # round's (cut-down state, undelivered) pair for the concession
        # check, and the final (accepted, committed, rewards) award columns.
        self._array_rounds = self.rounds == "array" and self._array_rounds_applicable()
        self._undelivered: Optional[np.ndarray] = None
        self._previous_array_round: Optional[
            tuple[Optional[np.ndarray], Optional[np.ndarray]]
        ] = None
        self._award_arrays: Optional[
            tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None

        if context.initial_overuse <= context.max_allowed_overuse:
            # The object path's Utility Agent finishes in its first step
            # without sending anything (one simulation round elapses).
            self.record.final_overuse = context.initial_overuse
            self.record.termination_reason = TerminationReason.OVERUSE_ACCEPTABLE
            self._result = self._collect_result(
                awards={}, final_bids=[None] * num_customers, simulation_rounds=1
            )
            self._phase = "done"
            return

        # Simulation round 1: initial announcement broadcast + every bid.
        self._announcement = self.scenario.method.initial_announcement(context)
        self.protocol.record_announcement(self._announcement)
        self._phase = "exchange"

    def _array_rounds_applicable(self) -> bool:
        """Whether this run can honour the array-round contract exactly."""
        method = self.scenario.method
        supports = getattr(method, "supports_array_rounds", None)
        return (
            supports is not None
            and supports()
            and self.population is not None
            and self.population.is_vectorizable
        )

    def step_exchange(self) -> None:
        """Run the pending announcement's bid exchange (phase ``exchange``)."""
        if self._phase != "exchange":
            raise RuntimeError(f"no exchange pending (phase {self._phase!r})")
        if self._array_rounds:
            self._undelivered = self._exchange_arrays(self._announcement, self._state)
        else:
            self._bids, self._delivered = self._exchange(self._announcement, self._state)
        self._phase = "advance"

    def step_advance(self) -> None:
        """One utility-side step: evaluate the last exchange, finish or announce.

        Mirrors one iteration of the former ``run()`` loop, including its
        entry condition: when the round budget is exhausted or awards already
        went out, the result is collected and the phase becomes ``"done"``.
        """
        if self._phase != "advance":
            raise RuntimeError(f"nothing to advance (phase {self._phase!r})")
        if not (
            self._simulation_rounds < self.max_simulation_rounds
            and not self._finished
        ):
            self._result = self._collect_result(
                self._awards, list(self._bids), self._simulation_rounds
            )
            self._phase = "done"
            return
        if self._array_rounds:
            self._advance_arrays()
            return
        # Each later simulation round evaluates the previous exchange and
        # either finishes (awards go out) or announces the next round.
        context = self._context
        method = self.scenario.method
        announcement = self._announcement
        round_number = self._round_number
        self._simulation_rounds += 1
        self._check_bid_concession(self._delivered, self._previous_delivered)
        bids_by_customer = {bid.customer: bid for bid in self._delivered}
        evaluation = method.evaluate_round(
            context, announcement, bids_by_customer, round_number
        )
        self.record.rounds.append(
            RoundRecord(
                round_number=round_number,
                announcement=announcement,
                bids=dict(bids_by_customer) if self.retain_round_bids else {},
                predicted_overuse_before=(
                    context.initial_overuse
                    if round_number == 0
                    else self.record.rounds[-1].predicted_overuse_after
                ),
                predicted_overuse_after=evaluation.predicted_overuse,
            )
        )
        if evaluation.termination is not None:
            self._awards = self._finish(
                evaluation, announcement, bids_by_customer, round_number,
                evaluation.termination,
            )
            self._finished = True
            return
        next_announcement = method.next_announcement(
            context, announcement, evaluation, round_number
        )
        if next_announcement is None:
            self._awards = self._finish(
                evaluation, announcement, bids_by_customer, round_number,
                TerminationReason.REWARD_SATURATED,
            )
            self._finished = True
            return
        self.protocol.record_announcement(next_announcement)
        self._announcement = next_announcement
        self._round_number += 1
        self._previous_delivered = self._delivered
        self._phase = "exchange"

    # -- array rounds ---------------------------------------------------------------

    def _array_bid_state(self) -> np.ndarray:
        """The numpy column holding this round's bids, by method."""
        method = self.scenario.method
        if isinstance(method, RewardTablesMethod):
            return self._state["cutdowns"]
        if isinstance(method, OfferMethod):
            return self._state["accepts"]
        return self._state["needs"]

    def _check_concession_arrays(self, undelivered: Optional[np.ndarray]) -> None:
        """Array sibling of :meth:`_check_bid_concession`.

        Only reward-table rounds carry cut-down bids the monotonic-concession
        protocol inspects; rows are paired by position (population order), and
        a row undelivered in either round is skipped, exactly like the object
        path's by-customer matching of partial rounds.  The kernels hold each
        customer at ``max(candidate, previous)``, so the violation branch is
        cold by construction — it exists for behaviour parity.
        """
        if not isinstance(self.scenario.method, RewardTablesMethod):
            return
        if self._previous_array_round is None:
            return
        previous_cutdowns, previous_undelivered = self._previous_array_round
        current = self._state.get("cutdowns")
        if current is None or previous_cutdowns is None:
            return
        retreated = current < previous_cutdowns
        if undelivered is not None:
            retreated &= ~undelivered
        if previous_undelivered is not None:
            retreated &= ~previous_undelivered
        if not retreated.any():
            return
        customer_ids = self.population.customer_ids
        for index in np.flatnonzero(retreated):
            self.protocol._record_violation(
                f"customer {customer_ids[index]!r} retreated from cut-down "
                f"{float(previous_cutdowns[index])} to {float(current[index])}"
            )

    def _advance_arrays(self) -> None:
        """Array sibling of the :meth:`step_advance` round evaluation.

        Same order of operations — concession check, round evaluation, round
        record, finish-or-announce — with the round's bids living only as the
        numpy state arrays.  The round record keeps an empty bid table (array
        rounds never materialise ``Bid`` objects, so there is nothing to
        retain); overuse bookkeeping is unaffected.
        """
        context = self._context
        method = self.scenario.method
        announcement = self._announcement
        round_number = self._round_number
        self._simulation_rounds += 1
        state = self._state
        undelivered = self._undelivered
        self._check_concession_arrays(undelivered)
        bid_state = self._array_bid_state()
        evaluation = method.evaluate_round_arrays(
            context, announcement, self.population, bid_state, undelivered, round_number
        )
        self.record.rounds.append(
            RoundRecord(
                round_number=round_number,
                announcement=announcement,
                bids={},
                predicted_overuse_before=(
                    context.initial_overuse
                    if round_number == 0
                    else self.record.rounds[-1].predicted_overuse_after
                ),
                predicted_overuse_after=evaluation.predicted_overuse,
            )
        )
        if evaluation.termination is not None:
            self._finish_arrays(
                evaluation, announcement, bid_state, undelivered, round_number,
                evaluation.termination,
            )
            self._finished = True
            return
        next_announcement = method.next_announcement(
            context, announcement, evaluation, round_number
        )
        if next_announcement is None:
            self._finish_arrays(
                evaluation, announcement, bid_state, undelivered, round_number,
                TerminationReason.REWARD_SATURATED,
            )
            self._finished = True
            return
        self.protocol.record_announcement(next_announcement)
        self._announcement = next_announcement
        self._round_number += 1
        self._previous_array_round = (state.get("cutdowns"), undelivered)
        self._phase = "exchange"

    def _finish_arrays(
        self,
        evaluation: ArrayRoundEvaluation,
        announcement,
        bid_state: np.ndarray,
        undelivered: Optional[np.ndarray],
        round_number: int,
        reason: TerminationReason,
    ) -> None:
        """Array sibling of :meth:`_finish`: award columns, no ``Award`` objects."""
        self.record.termination_reason = reason
        self.record.final_overuse = evaluation.predicted_overuse
        method = self.scenario.method
        committed = method.committed_cutdowns_array(
            self._context, self.population, bid_state, undelivered
        )
        rewards = method.rewards_due_array(
            self._context, announcement, self.population, bid_state, undelivered
        )
        accepted = evaluation.accepted_mask
        if accepted is None:
            raise RuntimeError(
                f"method {method.name!r} returned no accepted mask for array rounds"
            )
        self._award_arrays = (
            accepted,
            np.where(accepted, committed, 0.0),
            np.where(accepted, rewards, 0.0),
        )
        accepted_total = int(np.count_nonzero(accepted))
        self._count_messages(Performative.AWARD, accepted_total)
        self._count_messages(
            Performative.REJECT, len(self.population) - accepted_total
        )

    def run(self) -> NegotiationResult:
        """Run the negotiation to completion and return the result.

        One run per session: ``build()`` is idempotent, so a second ``run()``
        would replay rounds into the already-populated record.  Mirrors the
        object path, whose simulation also refuses to run twice.
        """
        self.start()
        while self._phase != "done":
            if self._phase == "exchange":
                self.step_exchange()
            else:
                self.step_advance()
        return self._result

    def _finish(
        self,
        evaluation: RoundEvaluation,
        announcement,
        bids_by_customer: dict[str, Bid],
        round_number: int,
        reason: TerminationReason,
    ) -> dict[str, Award]:
        self.record.termination_reason = reason
        self.record.final_overuse = evaluation.predicted_overuse
        method = self.scenario.method
        context_cutdowns = method.committed_cutdowns(self._context, bids_by_customer)
        rewards = method.rewards_due(self._context, announcement, bids_by_customer)
        awards: dict[str, Award] = {}
        accepted_total = 0
        for customer in self.population.customer_ids:
            accepted = evaluation.accepted_customers.get(customer, False)
            awards[customer] = Award(
                customer=customer,
                accepted=accepted,
                committed_cutdown=context_cutdowns.get(customer, 0.0) if accepted else 0.0,
                reward=rewards.get(customer, 0.0) if accepted else 0.0,
                round_number=round_number,
            )
            accepted_total += 1 if accepted else 0
        self._count_messages(Performative.AWARD, accepted_total)
        self._count_messages(
            Performative.REJECT, len(self.population.customer_ids) - accepted_total
        )
        return awards

    def _collect_result(
        self,
        awards: dict[str, Award],
        final_bids: list[Optional[Bid]],
        simulation_rounds: int,
    ) -> NegotiationResult:
        if self._array_rounds:
            result = self._collect_result_arrays(simulation_rounds)
        else:
            result = self._collect_result_objects(
                awards, final_bids, simulation_rounds
            )
        if self.fault_injector is not None:
            result.metadata["faults"] = self.fault_injector.report()
        # Execution provenance: which round mode actually ran (array requests
        # fall back to object rounds when the contract cannot be honoured)
        # and how the population's kernel cache fared.
        result.metadata["rounds_mode"] = "array" if self._array_rounds else "object"
        result.metadata["kernel_cache"] = dict(self.population.kernel_cache_stats())
        return result

    def _collect_result_arrays(self, simulation_rounds: int) -> NegotiationResult:
        """Columnar result assembly: one outcome view, no per-customer loop.

        Committed cut-downs and rewards are already zeroed outside the
        accepted mask (:meth:`_finish_arrays`), surpluses are masked the same
        way the object path's ``if accepted`` short-cut does, and the total
        reward runs through ``np.cumsum`` — strictly sequential, hence
        bit-identical to the object path's ``total += reward`` loop.
        """
        population = self.population
        num_customers = len(population)
        if self._award_arrays is not None:
            accepted_all, committed_all, rewards_all = self._award_arrays
        else:
            # No awards went out (trivial overuse or exhausted round budget).
            accepted_all = np.zeros(num_customers, dtype=bool)
            committed_all = np.zeros(num_customers, dtype=float)
            rewards_all = np.zeros(num_customers, dtype=float)
        surpluses = population.realised_surpluses(committed_all, rewards_all)
        surpluses = np.where(accepted_all, surpluses, 0.0)
        final_cutdowns = None
        if isinstance(self.scenario.method, RewardTablesMethod):
            final_cutdowns = self._state.get("cutdowns")
        if final_cutdowns is None:
            # Offer responses and quantity bids carry no cut-down attribute;
            # the object path's getattr(last_bid, "cutdown", 0.0) yields 0.0.
            final_cutdowns = np.zeros(num_customers, dtype=float)
        total_reward_paid = (
            float(np.cumsum(rewards_all)[-1]) if num_customers else 0.0
        )
        outcomes = ColumnarOutcomes(
            customer_ids=population.customer_ids,
            final_bid_cutdowns=final_cutdowns,
            awarded=accepted_all,
            committed_cutdowns=committed_all,
            rewards=rewards_all,
            surpluses=surpluses,
        )
        degraded = (
            int(self._degraded_ever.sum()) if self._degraded_ever is not None else 0
        )
        return NegotiationResult(
            scenario_name=self.scenario.name,
            method_name=self.scenario.method.name,
            record=self.record,
            customer_outcomes=outcomes,
            total_reward_paid=total_reward_paid,
            messages_sent=self._messages_sent,
            simulation_rounds=simulation_rounds,
            degraded_households=degraded,
        )

    def _collect_result_objects(
        self,
        awards: dict[str, Award],
        final_bids: list[Optional[Bid]],
        simulation_rounds: int,
    ) -> NegotiationResult:
        population = self.population
        outcomes: dict[str, CustomerOutcome] = {}
        total_reward_paid = 0.0
        num_customers = len(population.customer_ids)
        committed_all = np.zeros(num_customers, dtype=float)
        rewards_all = np.zeros(num_customers, dtype=float)
        accepted_all = np.zeros(num_customers, dtype=bool)
        for index, customer in enumerate(population.customer_ids):
            award = awards.get(customer)
            if award is not None and award.accepted:
                accepted_all[index] = True
                committed_all[index] = award.committed_cutdown
                rewards_all[index] = award.reward
        # One batched surplus evaluation instead of a per-customer scalar
        # interpolation loop; non-accepted rows carry (0, 0) and interpolate
        # to a surplus of exactly 0.0, matching the scalar code's short-cut.
        surpluses = population.realised_surpluses(committed_all, rewards_all)
        for index, customer in enumerate(population.customer_ids):
            last_bid = final_bids[index]
            final_cutdown = getattr(last_bid, "cutdown", 0.0) if last_bid is not None else 0.0
            accepted = bool(accepted_all[index])
            reward = float(rewards_all[index]) if accepted else 0.0
            committed = float(committed_all[index]) if accepted else 0.0
            outcomes[customer] = CustomerOutcome(
                customer=customer,
                final_bid_cutdown=float(final_cutdown),
                awarded=accepted,
                committed_cutdown=float(committed),
                reward=float(reward),
                surplus=float(surpluses[index]) if accepted else 0.0,
            )
            total_reward_paid += reward
        degraded = (
            int(self._degraded_ever.sum()) if self._degraded_ever is not None else 0
        )
        return NegotiationResult(
            scenario_name=self.scenario.name,
            method_name=self.scenario.method.name,
            record=self.record,
            customer_outcomes=outcomes,
            total_reward_paid=total_reward_paid,
            messages_sent=self._messages_sent,
            simulation_rounds=simulation_rounds,
            degraded_households=degraded,
        )
