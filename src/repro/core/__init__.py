"""Core library: scenarios, negotiation sessions and the load-balancing system.

This package ties the substrates together into the system the paper's
prototype demonstrates:

* :mod:`repro.core.scenario` — scenario definitions, including the calibrated
  reproduction of the prototype scenario behind Figures 6-9.
* :mod:`repro.core.session` — :class:`NegotiationSession`: builds the Utility
  Agent and the Customer Agents for a scenario, runs the round-synchronous
  multi-agent negotiation over the message bus and collects the results.
* :mod:`repro.core.fast_session` — :class:`FastSession`: the vectorized fast
  path; identical outcomes to :class:`NegotiationSession` at fixed seeds,
  batched numpy bid decisions, scales to 10,000 households.
* :mod:`repro.core.sharded_session` — :class:`ShardedSession`: the parallel
  runtime; the vectorized population cut into per-core shards with each
  round's kernels fanned out to a thread pool, identical outcomes again,
  scales to 50,000 households.
* :mod:`repro.core.results` — result value types and derived metrics.
* :mod:`repro.core.system` — :class:`LoadBalancingSystem`: the full pipeline
  (predict demand, decide whether to negotiate, negotiate, apply the awarded
  cut-downs, account for costs and rewards).

Running negotiations directly through the session classes is deprecated in
favour of the :mod:`repro.api` façade (``repro.api.run(scenario)``), which
dispatches to the right execution backend and keeps call sites independent of
the session zoo.  The ``NegotiationSession`` / ``FastSession`` names exported
*here* are thin shims that still work for one release but emit a
``DeprecationWarning`` on first construction; the underlying classes remain
importable warning-free from their home modules for the engine backends and
low-level tests.
"""

import warnings

from repro.core import fast_session as _fast_session_module
from repro.core import session as _session_module
from repro.core.planning import (
    CampaignDay,
    CampaignResult,
    DayAheadPlanner,
    MultiDayCampaign,
)
from repro.core.results import CustomerOutcome, NegotiationResult, SystemResult
from repro.core.scenario import (
    Scenario,
    paper_prototype_scenario,
    synthetic_scenario,
)
from repro.core.system import LoadBalancingSystem

#: Shim classes that have already warned (each warns exactly once per process).
_DEPRECATION_WARNED: set[str] = set()


def _warn_deprecated_session(name: str) -> None:
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"constructing repro.core.{name} directly is deprecated; run "
        f"negotiations through repro.api.run(scenario, ...) instead "
        f"(this shim will be removed in the next release)",
        DeprecationWarning,
        stacklevel=3,
    )


class NegotiationSession(_session_module.NegotiationSession):
    """Deprecated alias for :class:`repro.core.session.NegotiationSession`.

    Use ``repro.api.run(scenario, backend="object")`` instead.
    """

    def __init__(self, *args, **kwargs) -> None:
        _warn_deprecated_session("NegotiationSession")
        super().__init__(*args, **kwargs)


class FastSession(_fast_session_module.FastSession):
    """Deprecated alias for :class:`repro.core.fast_session.FastSession`.

    Use ``repro.api.run(scenario, backend="vectorized")`` instead.
    """

    def __init__(self, *args, **kwargs) -> None:
        _warn_deprecated_session("FastSession")
        super().__init__(*args, **kwargs)


__all__ = [
    "CampaignDay",
    "CampaignResult",
    "CustomerOutcome",
    "DayAheadPlanner",
    "FastSession",
    "LoadBalancingSystem",
    "MultiDayCampaign",
    "NegotiationResult",
    "NegotiationSession",
    "Scenario",
    "SystemResult",
    "paper_prototype_scenario",
    "synthetic_scenario",
]
