"""Core library: scenarios, negotiation sessions and the load-balancing system.

This package ties the substrates together into the system the paper's
prototype demonstrates:

* :mod:`repro.core.scenario` — scenario definitions, including the calibrated
  reproduction of the prototype scenario behind Figures 6-9.
* :mod:`repro.core.session` — :class:`NegotiationSession`: builds the Utility
  Agent and the Customer Agents for a scenario, runs the round-synchronous
  multi-agent negotiation over the message bus and collects the results.
* :mod:`repro.core.fast_session` — :class:`FastSession`: the vectorized fast
  path; identical outcomes to :class:`NegotiationSession` at fixed seeds,
  batched numpy bid decisions, scales to 10,000 households.
* :mod:`repro.core.results` — result value types and derived metrics.
* :mod:`repro.core.system` — :class:`LoadBalancingSystem`: the full pipeline
  (predict demand, decide whether to negotiate, negotiate, apply the awarded
  cut-downs, account for costs and rewards).
"""

from repro.core.planning import (
    CampaignDay,
    CampaignResult,
    DayAheadPlanner,
    MultiDayCampaign,
)
from repro.core.fast_session import FastSession
from repro.core.results import CustomerOutcome, NegotiationResult, SystemResult
from repro.core.scenario import (
    Scenario,
    paper_prototype_scenario,
    synthetic_scenario,
)
from repro.core.session import NegotiationSession
from repro.core.system import LoadBalancingSystem

__all__ = [
    "CampaignDay",
    "CampaignResult",
    "CustomerOutcome",
    "DayAheadPlanner",
    "FastSession",
    "LoadBalancingSystem",
    "MultiDayCampaign",
    "NegotiationResult",
    "NegotiationSession",
    "Scenario",
    "SystemResult",
    "paper_prototype_scenario",
    "synthetic_scenario",
]
