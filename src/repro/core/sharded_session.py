"""The sharded negotiation runtime: parallel population slices per round.

:class:`ShardedSession` runs the same negotiation as
:class:`~repro.core.fast_session.FastSession` — same announcement methods,
same monotonic concession protocol, same termination — but partitions the
:class:`~repro.agents.vectorized.VectorizedPopulation` into K contiguous
shards (:class:`~repro.agents.sharded.ShardedPopulation`) and fans each
round's customer-side kernels (``highest_acceptable_cutdowns``,
``expected_gain_cutdowns``, ``step_quantity_bids``, ``offer_acceptances``,
the interpolation and surplus kernels) out to a
:class:`concurrent.futures.ThreadPoolExecutor`, one worker per shard.

**Equivalence contract.**  The kernels are per-customer, so sharding by index
range and concatenating in shard order reproduces the unsharded arrays bit
for bit.  The utility side of each round — the global overuse estimate above
all — is reduced by the *same* :class:`~repro.negotiation.methods.base.
NegotiationMethod` object over the merged bids, i.e. the identical Section 6
code path the object and vectorized sessions use; for a fixed seed all three
backends return the same :class:`~repro.core.results.NegotiationResult`.
Between rounds the session additionally reconciles shard-local partial sums
of ``predicted_use_with_cutdown`` (exactly-rounded, via :func:`math.fsum`)
into a diagnostic overuse estimate; :meth:`reconciled_overuses` exposes the
trajectory so monitoring (and the test suite) can confirm the shards agree
with the authoritative estimate.

Threads rather than processes: the kernels are numpy-bound and release the
GIL, so a thread pool scales with cores without serialising 50k-household
arrays every round.  On a one-core host the pool degrades gracefully — same
results, a few percent of fan-out overhead — which is why ``backend="auto"``
only selects this runtime when multiple workers are actually available.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import numpy as np

from repro.agents.sharded import ShardedPopulation, default_shard_count
from repro.core.fast_session import FastSession
from repro.core.modes import validate_shard_count
from repro.core.results import NegotiationResult
from repro.core.scenario import Scenario
from repro.runtime.faults import FaultPlan


class ShardedSession(FastSession):
    """Drop-in for :class:`FastSession` running K population shards in parallel.

    Parameters
    ----------
    scenario / seed / max_simulation_rounds / check_protocol:
        As in :class:`FastSession`.
    shards:
        Number of population shards (and pool workers).  ``None`` means one
        shard per CPU core (:func:`~repro.agents.sharded.default_shard_count`);
        the count is clamped to the population size at build time.
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: Optional[int] = 0,
        max_simulation_rounds: int = 200,
        check_protocol: bool = True,
        retain_round_bids: bool = True,
        shards: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        rounds: str = "object",
    ) -> None:
        super().__init__(
            scenario,
            seed=seed,
            max_simulation_rounds=max_simulation_rounds,
            check_protocol=check_protocol,
            retain_round_bids=retain_round_bids,
            fault_plan=fault_plan,
            rounds=rounds,
        )
        validated = validate_shard_count(shards)
        self.requested_shards = (
            default_shard_count() if validated is None else validated
        )
        self.sharded: Optional[ShardedPopulation] = None
        #: Per responded round, the committed cut-down vector (reward-table
        #: rounds only; other methods have no cut-down vector).  Kept as
        #: references — each round's kernel produces a fresh array — so the
        #: shard-local reductions can be computed lazily, off the hot path.
        self._round_cutdowns: list[np.ndarray] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._last_outcomes: Optional[dict] = None

    # -- construction ------------------------------------------------------------

    def build(self) -> ShardedPopulation:
        """Build the vectorized population and wrap it in shards (idempotent)."""
        if self.population is not None:
            return self.population
        base = super().build()
        self.sharded = ShardedPopulation(base, self.requested_shards)
        self.population = self.sharded
        return self.population

    @property
    def num_shards(self) -> int:
        """Effective shard count (after clamping to the population size)."""
        return self.build().num_shards

    # -- execution -----------------------------------------------------------------

    def run(self) -> NegotiationResult:
        """Run the negotiation with a per-shard worker pool around the rounds."""
        sharded = self.build()
        if self.fault_injector is not None:
            sharded.attach_fault_injector(self.fault_injector)
        if sharded.num_shards > 1:
            self._executor = ThreadPoolExecutor(
                max_workers=sharded.num_shards,
                thread_name_prefix="negotiation-shard",
            )
            sharded.attach_executor(self._executor)
        try:
            return super().run()
        finally:
            sharded.attach_executor(None)
            sharded.attach_fault_injector(None)
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def _respond_all(
        self, announcement, state: dict, suppressed=None, materialise: bool = True
    ) -> Optional[list]:
        """Fan the round's kernels out, keeping the cut-down vector for later."""
        bids = super()._respond_all(
            announcement, state, suppressed=suppressed, materialise=materialise
        )
        cutdowns = state.get("cutdowns")
        if cutdowns is not None:
            self._round_cutdowns.append(cutdowns)
        return bids

    # -- reconciliation diagnostics ---------------------------------------------

    def round_use_partials(self) -> list[np.ndarray]:
        """Per evaluated round, the per-shard partial use sums (lazy).

        One entry per entry of ``record.rounds``: a final bid exchange cut
        short by ``max_simulation_rounds`` is never evaluated into a round
        record, so its cut-down vector is dropped here too.  The reductions
        are computed on demand — the negotiation hot path only keeps the
        cut-down vectors, it never pays for the diagnostics.
        """
        if self.record is None:
            raise RuntimeError("run() the session before reconciling overuse")
        evaluated = self._round_cutdowns[: len(self.record.rounds)]
        return [self.sharded.shard_use_partials(cutdowns) for cutdowns in evaluated]

    def reconciled_overuses(self) -> list[float]:
        """Per-round overuse estimates reduced from the shard partial sums.

        ``fsum(shard partials) - normal_use`` per evaluated reward-table
        round, aligned one-to-one with ``record.rounds``; agrees with the
        authoritative per-round estimate there to floating-point summation
        accuracy (the authoritative one is computed by the shared method
        object, which is what bit-identity is pinned to).
        """
        context = self._context
        if context is None:
            raise RuntimeError("run() the session before reconciling overuse")
        return [
            math.fsum(partials) - context.normal_use
            for partials in self.round_use_partials()
        ]

    def shard_outcome_stats(self) -> list[dict[str, float]]:
        """Per-shard end-of-run aggregates (customers, acceptances, sums).

        Derived from the global result by index range, so it is pure
        observability: ``sum`` of any column over shards equals the global
        figure exactly as reported in the :class:`NegotiationResult`.
        """
        if self._last_outcomes is None:
            raise RuntimeError("run() the session before collecting shard stats")
        stats: list[dict[str, float]] = []
        outcomes = list(self._last_outcomes.values())
        for shard_index, (start, stop) in enumerate(self.sharded.bounds):
            rows = outcomes[start:stop]
            stats.append(
                {
                    "shard": shard_index,
                    "customers": stop - start,
                    "accepted": sum(1 for o in rows if o.awarded),
                    "committed_cutdown_sum": sum(o.committed_cutdown for o in rows),
                    "reward_sum": sum(o.reward for o in rows),
                    "surplus_sum": sum(o.surplus for o in rows),
                }
            )
        return stats

    def shard_recoveries(self) -> list[dict[str, object]]:
        """Recovered shard-kernel failures, part of reconciliation diagnostics.

        One record per recovery — which kernel call, which shard and index
        range, and whether the inline retry or the per-customer oracle
        decomposition produced the rows.  Empty on fault-free runs; whenever
        recovery succeeds the results are bit-identical either way.
        """
        if self.sharded is None:
            raise RuntimeError("build() the session before reading recoveries")
        return list(self.sharded.recovery_events)

    def _collect_result(self, awards, final_bids, simulation_rounds):
        result = super()._collect_result(awards, final_bids, simulation_rounds)
        self._last_outcomes = result.customer_outcomes
        if self.fault_injector is not None and self.sharded is not None:
            faults = result.metadata.setdefault("faults", {})
            faults["shard_recoveries"] = list(self.sharded.recovery_events)
        return result
