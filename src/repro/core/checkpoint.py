"""Campaign checkpoints: persist a multi-day run after each completed day.

A multi-week campaign over a large population is exactly the kind of run
that dies to a power cut, an OOM kill or a pre-emptible node reclaim.  The
campaign loop is deterministic given its seeds, so a checkpoint does not
need to freeze the whole process — it only has to capture the *stateful*
parts the loop threads from one day to the next:

* the trained consumption predictor (its ring buffer of observed days),
* the accumulated :class:`~repro.core.planning.CampaignDay` records and
  wall-clock accounting,
* the exact position of the weather and demand random streams
  (:meth:`~repro.runtime.rng.RandomSource.state`).

Everything else — the households, preference models, production model,
engine configuration — is reconstructed by the caller exactly as for the
original run; a ``fingerprint`` of the run parameters is stored so a resume
against a *different* campaign fails loudly instead of silently producing
garbage.  Restoring a checkpoint and continuing yields rows bit-identical
to the uninterrupted run (guarded by the kill-and-resume equivalence test).

The snapshot format is a pickle: checkpoints are private scratch state of
one code version on one machine, not an interchange format.  Writes are
atomic (temp file + :func:`os.replace`) so a crash *during* checkpointing
leaves the previous day's snapshot intact.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.planning import CampaignDay

#: Bumped whenever the snapshot layout changes; a mismatched version fails
#: the load instead of mis-restoring state.
CHECKPOINT_VERSION = 1


@dataclass
class CampaignCheckpoint:
    """Resumable state of a :class:`~repro.core.planning.MultiDayCampaign`.

    Attributes
    ----------
    next_day:
        Index of the first day that has *not* run yet; a resumed campaign
        continues its loop here.
    fingerprint:
        Identifying parameters of the run (seed, warm-up days, population
        size, backend).  :meth:`validate_fingerprint` rejects a resume whose
        campaign was built with different parameters.
    days / planning_seconds / negotiation_seconds:
        The accumulated :class:`~repro.core.planning.CampaignResult` fields
        as of the end of day ``next_day - 1``.
    predictor:
        The trained consumption predictor object (carries the observation
        ring buffer).
    weather_rng_state / demand_rng_state:
        Bit-generator snapshots of the campaign's weather stream and the
        planner's demand stream, so resumed days draw exactly the samples
        the uninterrupted run would have drawn.
    """

    version: int
    fingerprint: dict[str, object]
    next_day: int
    days: list["CampaignDay"]
    planning_seconds: float
    negotiation_seconds: float
    predictor: object
    weather_rng_state: dict
    demand_rng_state: dict
    metadata: dict[str, object] = field(default_factory=dict)

    def save(self, path: str | os.PathLike) -> None:
        """Atomically persist the checkpoint to ``path``."""
        path = os.fspath(path)
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "wb") as handle:
            pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "CampaignCheckpoint":
        """Load a checkpoint, failing loudly on a foreign or stale snapshot."""
        with open(os.fspath(path), "rb") as handle:
            snapshot = pickle.load(handle)
        if not isinstance(snapshot, cls):
            raise ValueError(
                f"{os.fspath(path)!r} does not contain a campaign checkpoint "
                f"(got {type(snapshot).__name__})"
            )
        if snapshot.version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {snapshot.version} is not supported "
                f"(this code writes version {CHECKPOINT_VERSION}); re-run the "
                f"campaign from the start"
            )
        return snapshot

    def validate_fingerprint(self, fingerprint: dict[str, object]) -> None:
        """Raise :class:`ValueError` when resuming against a different campaign."""
        mismatched = {
            key: (self.fingerprint.get(key), fingerprint.get(key))
            for key in set(self.fingerprint) | set(fingerprint)
            if self.fingerprint.get(key) != fingerprint.get(key)
        }
        if mismatched:
            details = ", ".join(
                f"{key}: checkpoint={have!r} vs campaign={want!r}"
                for key, (have, want) in sorted(mismatched.items())
            )
            raise ValueError(
                f"checkpoint does not match this campaign ({details}); "
                f"resume with the campaign the checkpoint was written by"
            )
